package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"branchsim/internal/xrand"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRecordAndBias(t *testing.T) {
	db := NewDB("w", "train")
	for i := 0; i < 9; i++ {
		db.Record(0x10, true)
	}
	db.Record(0x10, false)
	b := db.Get(0x10)
	if b == nil {
		t.Fatal("branch not recorded")
	}
	if !almost(b.TakenBias(), 0.9) || !almost(b.Bias(), 0.9) {
		t.Fatalf("taken bias %v, bias %v", b.TakenBias(), b.Bias())
	}
	if !b.MajorityTaken() {
		t.Fatalf("majority direction wrong")
	}
}

func TestBiasOfNotTakenBranch(t *testing.T) {
	db := NewDB("w", "train")
	for i := 0; i < 4; i++ {
		db.Record(0x20, false)
	}
	db.Record(0x20, true)
	b := db.Get(0x20)
	if !almost(b.Bias(), 0.8) {
		t.Fatalf("bias = %v, want 0.8 (not-taken dominant)", b.Bias())
	}
	if b.MajorityTaken() {
		t.Fatalf("not-taken branch reported majority taken")
	}
}

func TestMajorityTieCountsTaken(t *testing.T) {
	db := NewDB("w", "t")
	db.Record(1, true)
	db.Record(1, false)
	if !db.Get(1).MajorityTaken() {
		t.Fatalf("tie should count as taken")
	}
}

func TestAccuracy(t *testing.T) {
	db := NewDB("w", "t")
	db.Predictor = "gshare:1KB"
	db.RecordPredicted(0x30, true, true)
	db.RecordPredicted(0x30, true, true)
	db.RecordPredicted(0x30, false, false)
	db.RecordPredicted(0x30, true, false)
	b := db.Get(0x30)
	if !almost(b.Accuracy(), 0.5) {
		t.Fatalf("accuracy = %v, want 0.5", b.Accuracy())
	}
}

func TestEmptyBranchStats(t *testing.T) {
	var b BranchStats
	if b.TakenBias() != 0 || b.Bias() != 0 || b.Accuracy() != 0 {
		t.Fatalf("zero-exec stats should report zeros")
	}
}

func TestDynamicBranchesAndLen(t *testing.T) {
	db := NewDB("w", "t")
	db.Record(1, true)
	db.Record(1, true)
	db.Record(2, false)
	if db.Len() != 2 || db.DynamicBranches() != 3 {
		t.Fatalf("len %d dyn %d", db.Len(), db.DynamicBranches())
	}
}

func TestBranchesSortedByPC(t *testing.T) {
	db := NewDB("w", "t")
	for _, pc := range []uint64{40, 4, 400, 44} {
		db.Record(pc, true)
	}
	bs := db.Branches()
	for i := 1; i < len(bs); i++ {
		if bs[i-1].PC >= bs[i].PC {
			t.Fatalf("branches not sorted: %v", bs)
		}
	}
}

func TestMergeSamePredictor(t *testing.T) {
	a := NewDB("w", "train")
	a.Predictor = "gshare:1KB"
	a.Instructions = 100
	a.RecordPredicted(1, true, true)
	b := NewDB("w", "ref")
	b.Predictor = "gshare:1KB"
	b.Instructions = 50
	b.RecordPredicted(1, false, false)
	b.RecordPredicted(2, true, true)

	a.Merge(b)
	if a.Instructions != 150 {
		t.Fatalf("instructions = %d", a.Instructions)
	}
	s := a.Get(1)
	if s.Exec != 2 || s.Taken != 1 || s.Correct != 1 {
		t.Fatalf("merged stats = %+v", s)
	}
	if a.Get(2) == nil {
		t.Fatalf("new branch not merged")
	}
	if a.Predictor != "gshare:1KB" {
		t.Fatalf("predictor annotation lost: %q", a.Predictor)
	}
	if !strings.Contains(a.Input, "train") || !strings.Contains(a.Input, "ref") {
		t.Fatalf("merged input label = %q", a.Input)
	}
}

func TestMergeDifferentPredictorsDropsAccuracy(t *testing.T) {
	a := NewDB("w", "t1")
	a.Predictor = "gshare:1KB"
	a.RecordPredicted(1, true, true)
	b := NewDB("w", "t2")
	b.Predictor = "bimodal:1KB"
	b.RecordPredicted(1, true, true)

	a.Merge(b)
	if a.Predictor != "" {
		t.Fatalf("mismatched predictors should clear the annotation")
	}
	if a.Get(1).Correct != 0 {
		t.Fatalf("accuracy counts survived a predictor mismatch")
	}
	if a.Get(1).Exec != 2 {
		t.Fatalf("bias counts must survive the merge: %+v", a.Get(1))
	}
}

func TestMergeNil(t *testing.T) {
	a := NewDB("w", "t")
	a.Record(1, true)
	a.Merge(nil)
	if a.Len() != 1 {
		t.Fatalf("merge(nil) changed the db")
	}
}

func TestRemoveUnstable(t *testing.T) {
	train := NewDB("w", "train")
	ref := NewDB("w", "ref")
	// stable branch: 90% taken in both
	for i := 0; i < 10; i++ {
		train.Record(1, i < 9)
		ref.Record(1, i < 9)
	}
	// drifting branch: 90% taken -> 20% taken
	for i := 0; i < 10; i++ {
		train.Record(2, i < 9)
		ref.Record(2, i < 2)
	}
	// train-only branch: untouched by the filter
	train.Record(3, true)

	removed := train.RemoveUnstable(ref, 0.05)
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if train.Get(2) != nil {
		t.Fatalf("drifting branch survived")
	}
	if train.Get(1) == nil || train.Get(3) == nil {
		t.Fatalf("stable/unseen branches removed")
	}
}

func TestClone(t *testing.T) {
	a := NewDB("w", "t")
	a.Record(1, true)
	b := a.Clone()
	b.Record(1, false)
	b.Record(2, true)
	if a.Get(1).Exec != 1 || a.Get(2) != nil {
		t.Fatalf("clone aliases the original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	db := NewDB("w", "t")
	db.Record(1, true)
	db.Get(1).Taken = 5
	if err := db.Validate(); err == nil {
		t.Fatalf("taken > exec not caught")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB("gcc", "train")
	db.Predictor = "gshare:8KB"
	db.Instructions = 12345
	rng := xrand.New(1)
	for i := 0; i < 200; i++ {
		pc := uint64(0x1000 + i*4)
		for j := 0; j < rng.Intn(20)+1; j++ {
			db.RecordPredicted(pc, rng.Bool(0.7), rng.Bool(0.9))
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "gcc" || got.Input != "train" || got.Predictor != "gshare:8KB" || got.Instructions != 12345 {
		t.Fatalf("metadata lost: %+v", got)
	}
	if got.Len() != db.Len() {
		t.Fatalf("branch count %d, want %d", got.Len(), db.Len())
	}
	for _, b := range db.Branches() {
		g := got.Get(b.PC)
		if g == nil || *g != *b {
			t.Fatalf("branch %#x: %+v vs %+v", b.PC, g, b)
		}
	}
}

func TestSaveLoadProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := xrand.New(seed)
		db := NewDB("w", "t")
		for i := 0; i < int(n); i++ {
			db.Record(rng.Uint64(), rng.Bool(0.5))
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		if got.Len() != db.Len() {
			return false
		}
		for _, b := range db.Branches() {
			g := got.Get(b.PC)
			if g == nil || *g != *b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version":99,"workload":"w","input":"t"}`)); err == nil {
		t.Fatalf("bad version accepted")
	}
}

func TestLoadRejectsDuplicatePC(t *testing.T) {
	blob := `{"version":1,"workload":"w","input":"t","branches":[{"pc":4,"exec":1,"taken":1},{"pc":4,"exec":2,"taken":0}]}`
	if _, err := Load(strings.NewReader(blob)); err == nil {
		t.Fatalf("duplicate PC accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatalf("garbage accepted")
	}
}

func TestHighlyBiasedDynamicFraction(t *testing.T) {
	db := NewDB("w", "t")
	// branch A: 100 execs, 100% taken (biased)
	for i := 0; i < 100; i++ {
		db.Record(1, true)
	}
	// branch B: 100 execs, 50/50 (not biased)
	for i := 0; i < 100; i++ {
		db.Record(2, i%2 == 0)
	}
	if got := db.HighlyBiasedDynamicFraction(0.95); !almost(got, 0.5) {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
	if got := db.HighlyBiasedDynamicFraction(0.4); !almost(got, 1.0) {
		t.Fatalf("low cutoff fraction = %v, want 1.0", got)
	}
}

func TestDiverge(t *testing.T) {
	train := NewDB("w", "train")
	ref := NewDB("w", "ref")
	// branch 1: stable, seen in both (ref: 10 execs)
	for i := 0; i < 10; i++ {
		train.Record(1, true)
		ref.Record(1, true)
	}
	// branch 2: flips direction (ref: 10 execs)
	for i := 0; i < 10; i++ {
		train.Record(2, true)
		ref.Record(2, false)
	}
	// branch 3: ref-only (ref: 20 execs)
	for i := 0; i < 20; i++ {
		ref.Record(3, i%2 == 0)
	}

	d := Diverge(train, ref)
	if !almost(d.CoverageStatic, 2.0/3) {
		t.Fatalf("static coverage = %v", d.CoverageStatic)
	}
	if !almost(d.CoverageDynamic, 0.5) {
		t.Fatalf("dynamic coverage = %v", d.CoverageDynamic)
	}
	if !almost(d.FlipStatic, 1.0/3) || !almost(d.FlipDynamic, 0.25) {
		t.Fatalf("flips = %v / %v", d.FlipStatic, d.FlipDynamic)
	}
	if !almost(d.LargeDriftStatic, 1.0/3) {
		t.Fatalf("large drift = %v", d.LargeDriftStatic)
	}
	if !almost(d.SmallDriftStatic, 1.0/3) {
		t.Fatalf("small drift = %v", d.SmallDriftStatic)
	}
}

func TestDivergeEmpty(t *testing.T) {
	d := Diverge(NewDB("w", "a"), NewDB("w", "b"))
	if d.CoverageStatic != 0 || d.CoverageDynamic != 0 {
		t.Fatalf("empty divergence = %+v", d)
	}
}

func TestRecordDestructiveCollision(t *testing.T) {
	db := NewDB("w", "t")
	db.RecordPredicted(1, true, false)
	db.RecordDestructiveCollision(1)
	if db.Get(1).Dcol != 1 {
		t.Fatalf("dcol = %d", db.Get(1).Dcol)
	}
}
