package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"branchsim/internal/fsx"
)

// fileFormat is the on-disk JSON shape. Branches are stored as a PC-sorted
// slice (JSON objects cannot key on uint64, and sorted output diffs well).
type fileFormat struct {
	Version      int            `json:"version"`
	Workload     string         `json:"workload"`
	Input        string         `json:"input"`
	Predictor    string         `json:"predictor,omitempty"`
	Instructions uint64         `json:"instructions"`
	Branches     []*BranchStats `json:"branches"`
}

const fileVersion = 1

// Save writes the database as JSON.
func (d *DB) Save(w io.Writer) error {
	ff := fileFormat{
		Version:      fileVersion,
		Workload:     d.Workload,
		Input:        d.Input,
		Predictor:    d.Predictor,
		Instructions: d.Instructions,
		Branches:     d.Branches(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(&ff); err != nil {
		return fmt.Errorf("profile: encoding database: %w", err)
	}
	return nil
}

// Load reads a database written by Save.
func Load(r io.Reader) (*DB, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("profile: decoding database: %w", err)
	}
	if ff.Version != fileVersion {
		return nil, fmt.Errorf("profile: unsupported database version %d", ff.Version)
	}
	d := NewDB(ff.Workload, ff.Input)
	d.Predictor = ff.Predictor
	d.Instructions = ff.Instructions
	for i, b := range ff.Branches {
		if b == nil {
			return nil, fmt.Errorf("profile: null branch record at index %d", i)
		}
		if prev, dup := d.byPC[b.PC]; dup {
			return nil, fmt.Errorf("profile: duplicate record for pc %#x (%v, %v)", b.PC, prev, b)
		}
		d.byPC[b.PC] = b
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// SaveFile writes the database to path atomically and durably: the JSON is
// written to a temporary file in the same directory, fsynced, renamed into
// place, and the directory entry fsynced — so neither a crash mid-write nor
// power loss right after the rename loses or truncates the database.
func (d *DB) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op once the rename lands
	f.Chmod(0o644)       // CreateTemp defaults to 0600; match os.Create
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	if err := fsx.SyncDir(dir); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	return nil
}

// LoadFile reads a database from path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	defer f.Close()
	return Load(f)
}
