// Package cliflags holds the flag groups the branchsim commands share —
// replay-engine tuning, telemetry selection, and observability sinks — so
// bpexperiment, bpsim and bpserve register identical flag names with
// identical semantics instead of drifting copies.
//
// Each group is a plain struct: Register binds its fields to a FlagSet (with
// the canonical defaults and help text), and a build method turns the parsed
// values into the underlying configuration. The zero value of every group is
// valid and means "all features off", which is what command tests construct
// directly.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"branchsim/internal/dashboard"
	"branchsim/internal/experiment"
	"branchsim/internal/obs"
	"branchsim/internal/replay"
	"branchsim/internal/telemetry"
)

// Telemetry is the -interval / -table-stats / -confidence / -topk flag
// group.
type Telemetry struct {
	Interval   uint64
	TableStats bool
	Confidence bool
	TopK       int
}

// Register binds the telemetry flags to fs.
func (t *Telemetry) Register(fs *flag.FlagSet) {
	fs.Uint64Var(&t.Interval, "interval", 0, "journal an interval telemetry record every N instructions (0 = off; requires -journal to persist)")
	fs.BoolVar(&t.TableStats, "table-stats", false, "sample predictor-table introspection (occupancy, counter states, entropy, sharing; per-bank tagged stats for tage/perceptron) at interval boundaries")
	fs.BoolVar(&t.Confidence, "confidence", false, "collect per-prediction confidence telemetry (interval records plus a low-confidence top-K with -topk) for predictors that grade themselves (tage, perceptron)")
	fs.IntVar(&t.TopK, "topk", 0, "track the K worst-offender branches per arm with bounded per-branch stats (0 = off)")
}

// Config converts the parsed flags to a telemetry configuration.
func (t *Telemetry) Config() telemetry.Config {
	return telemetry.Config{Interval: t.Interval, TableStats: t.TableStats, Confidence: t.Confidence, TopK: t.TopK}
}

// Enabled reports whether any telemetry feature was requested.
func (t *Telemetry) Enabled() bool { return t.Config().Enabled() }

// Replay is the capture-once replay engine flag group: -workers, -no-replay,
// -no-batch, -replay-mem, -replay-spill, -verify-chunks, -quarantine-dir.
type Replay struct {
	Workers       int
	NoReplay      bool
	NoBatch       bool
	MemMB         int
	SpillDir      string
	VerifyChunks  bool
	QuarantineDir string
}

// Register binds the replay flags to fs.
func (r *Replay) Register(fs *flag.FlagSet) {
	fs.IntVar(&r.Workers, "workers", runtime.GOMAXPROCS(0), "concurrent trace replays in the capture-once engine")
	fs.BoolVar(&r.NoReplay, "no-replay", false, "execute the workload for every arm instead of capturing its branch stream once and replaying it")
	fs.BoolVar(&r.NoBatch, "no-batch", false, "replay per-event through the scalar Predict/Update protocol instead of the batched block kernel (results are bit-identical; this is an escape hatch and benchmarking baseline)")
	fs.IntVar(&r.MemMB, "replay-mem", 512, "in-memory budget for captured traces, in MiB; beyond it chunks spill to disk (0 = unlimited)")
	fs.StringVar(&r.SpillDir, "replay-spill", "", "directory for spilled trace chunks (default: the system temp directory)")
	fs.BoolVar(&r.VerifyChunks, "verify-chunks", true, "CRC32C-verify every captured trace chunk before replaying it; corrupt chunks are quarantined and the capture retried")
	fs.StringVar(&r.QuarantineDir, "quarantine-dir", "", "preserve corrupt trace chunks and spill files in this directory for post-mortem (default: discard them)")
}

// HarnessOptions builds the harness options the group selects: a configured
// replay engine (unless -no-replay) whose diagnostics go through logf. The
// returned cleanup releases the engine; call it after the harness is done
// (safe to call always).
func (r *Replay) HarnessOptions(logf func(format string, args ...any)) ([]experiment.HarnessOption, func()) {
	if r.NoReplay {
		return nil, func() {}
	}
	ropts := []replay.Option{
		replay.WithVerify(r.VerifyChunks),
		replay.WithBatch(!r.NoBatch),
	}
	if logf != nil {
		ropts = append(ropts, replay.WithLogf(logf))
	}
	if r.QuarantineDir != "" {
		ropts = append(ropts, replay.WithQuarantine(r.QuarantineDir))
	}
	eng := replay.New(r.Workers, int64(r.MemMB)<<20, r.SpillDir, ropts...)
	return []experiment.HarnessOption{experiment.WithReplay(eng)}, eng.Close
}

// Obs is the observability flag group: -journal, -metrics, -serve,
// -progress, -trace, -slow-arm.
type Obs struct {
	JournalPath string
	MetricsAddr string
	ServeAddr   string
	Progress    bool
	Trace       bool
	SlowArm     time.Duration
}

// Register binds all observability flags to fs.
func (o *Obs) Register(fs *flag.FlagSet) {
	o.RegisterJournal(fs)
	fs.StringVar(&o.MetricsAddr, "metrics", "", "serve /debug/vars and /debug/pprof on this address while the sweep runs (e.g. 127.0.0.1:8080, or :0 for an ephemeral port)")
	fs.StringVar(&o.ServeAddr, "serve", "", "serve the live dashboard at / plus /metrics (Prometheus), /events (SSE), /debug/vars and /debug/pprof on this address while the sweep runs")
}

// RegisterJournal binds only -journal and -progress — for commands like
// bpserve whose primary listener already hosts the dashboard and metrics.
func (o *Obs) RegisterJournal(fs *flag.FlagSet) {
	fs.StringVar(&o.JournalPath, "journal", "", "write one JSONL record per simulated arm to this file")
	fs.BoolVar(&o.Progress, "progress", false, "print a periodic one-line sweep status to stderr")
	fs.BoolVar(&o.Trace, "trace", true, "publish live-only trace spans (request → job → arm → phase) on the event bus; journals are unaffected")
	fs.DurationVar(&o.SlowArm, "slow-arm", 30*time.Second, "arms at least this slow record a latency-histogram exemplar linking the bucket to their trace (0 = off)")
}

// Enabled reports whether any observability flag was set. -trace and
// -slow-arm only shape an observer that exists for another reason; on their
// own they do not force one into being (tracing without a bus or journal
// would observe nothing).
func (o *Obs) Enabled() bool {
	return o.JournalPath != "" || o.MetricsAddr != "" || o.ServeAddr != "" || o.Progress
}

// ObserverOptions returns the obs options the tracing flags select; callers
// that build an observer directly (bpserve) apply them alongside their own.
func (o *Obs) ObserverOptions() []obs.Option {
	var opts []obs.Option
	if o.Trace {
		opts = append(opts, obs.WithTracing())
	}
	if o.SlowArm > 0 {
		opts = append(opts, obs.WithSlowArm(o.SlowArm))
	}
	return opts
}

// Observer builds the shared sink, journal-backed when -journal was given.
// It returns nil (a valid no-op sink) when no observability flag was set —
// the zero-cost default. The caller owns the observer and closes it.
func (o *Obs) Observer() (*obs.Observer, error) {
	if !o.Enabled() {
		return nil, nil
	}
	opts := o.ObserverOptions()
	if o.JournalPath != "" {
		j, err := obs.OpenJournal(o.JournalPath)
		if err != nil {
			return nil, err
		}
		opts = append(opts, obs.WithJournal(j))
	}
	return obs.New(opts...), nil
}

// StartEndpoints starts whatever the group's flags asked for on sink: the
// -metrics debug endpoint, the -serve dashboard (wrapped by wrap when
// non-nil, which is how bpserve mounts its job API in front of the
// dashboard), and the -progress reporter logging to logw. prog prefixes the
// startup lines. The returned cleanup stops everything; call it on every
// exit path (safe when nothing was started).
func (o *Obs) StartEndpoints(sink *obs.Observer, prog string, logw io.Writer, wrap func(http.Handler) http.Handler) (func(), error) {
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	if o.MetricsAddr != "" {
		srv, err := sink.Serve(o.MetricsAddr)
		if err != nil {
			cleanup()
			return nil, err
		}
		cleanups = append(cleanups, func() { srv.Close() })
		fmt.Fprintf(logw, "%s: serving metrics on http://%s/debug/vars (pprof under /debug/pprof/)\n", prog, srv.Addr())
	}
	if o.ServeAddr != "" {
		state, stopFeed := dashboard.Attach(sink)
		cleanups = append(cleanups, stopFeed)
		root := http.Handler(dashboard.Handler(state))
		if wrap != nil {
			root = wrap(root)
		}
		srv, err := sink.Serve(o.ServeAddr, obs.WithRootHandler(root))
		if err != nil {
			cleanup()
			return nil, err
		}
		cleanups = append(cleanups, func() { srv.Close() })
		fmt.Fprintf(logw, "%s: dashboard on http://%s/ (/metrics, /events, /debug/vars, /debug/pprof/)\n", prog, srv.Addr())
	}
	if o.Progress {
		cleanups = append(cleanups, sink.StartProgress(logw, 2*time.Second))
	}
	return cleanup, nil
}
