package trace

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"branchsim/internal/xrand"
)

func TestCountsAccumulate(t *testing.T) {
	var c Counts
	c.Branch(0x10, true)
	c.Branch(0x14, false)
	c.Branch(0x10, true)
	c.Ops(7)
	if c.Branches != 3 || c.TakenCount != 2 || c.Instructions != 10 {
		t.Fatalf("counts = %+v", c)
	}
	// 3 branches / 10 instructions = 300 CBRs/KI
	if got := c.CBRsPerKI(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("CBRsPerKI = %v, want 300", got)
	}
}

func TestCountsEmpty(t *testing.T) {
	var c Counts
	if c.CBRsPerKI() != 0 {
		t.Fatalf("empty counts should report 0 CBRs/KI")
	}
}

func TestBufferStoresEvents(t *testing.T) {
	var b Buffer
	b.Branch(0x40, true)
	b.Ops(3)
	b.Branch(0x44, false)
	want := []Event{{PC: 0x40, Taken: true}, {PC: 0x44, Taken: false}}
	if len(b.Events) != 2 || b.Events[0] != want[0] || b.Events[1] != want[1] {
		t.Fatalf("events = %v", b.Events)
	}
	if b.Instructions != 5 {
		t.Fatalf("instructions = %d, want 5", b.Instructions)
	}
}

func TestTeeDuplicates(t *testing.T) {
	var a, b Buffer
	tee := Tee(&a, &b)
	tee.Branch(0x10, true)
	tee.Ops(4)
	if a.Branches != 1 || b.Branches != 1 || a.Instructions != 5 || b.Instructions != 5 {
		t.Fatalf("tee did not duplicate: a=%+v b=%+v", a.Counts, b.Counts)
	}
}

func TestDiscardAcceptsEverything(t *testing.T) {
	Discard.Branch(1, true)
	Discard.Ops(10)
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", d, got)
		}
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(d int64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func roundTrip(t *testing.T, events []Event, ops []uint64) (Counts, *Buffer) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		w.Branch(e.PC, e.Taken)
		if i < len(ops) {
			w.Ops(ops[i])
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Buffer
	counts, err := r.Replay(&got)
	if err != nil {
		t.Fatal(err)
	}
	return counts, &got
}

func TestFileRoundTrip(t *testing.T) {
	events := []Event{
		{0x1200_0000, true},
		{0x1200_0004, false},
		{0x1200_0004, true},
		{0xffff_ffff_fffc, true}, // big jump
		{0x10, false},            // big jump back
	}
	_, got := roundTrip(t, events, []uint64{3, 0, 1 << 33})
	if len(got.Events) != len(events) {
		t.Fatalf("replayed %d events, want %d", len(got.Events), len(events))
	}
	for i := range events {
		if got.Events[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], events[i])
		}
	}
	if got.Instructions != uint64(len(events))+3+(1<<33) {
		t.Fatalf("instructions = %d", got.Instructions)
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := xrand.New(seed)
		events := make([]Event, int(n))
		var ops []uint64
		for i := range events {
			// the format stores addresses modulo 2^60
			events[i] = Event{PC: rng.Uint64() & (1<<60 - 1) &^ 3, Taken: rng.Bool(0.5)}
			ops = append(ops, uint64(rng.Intn(100)))
		}
		_, got := roundTrip(t, events, ops)
		if len(got.Events) != len(events) {
			return false
		}
		for i := range events {
			if got.Events[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("NOTATRACEFILE"))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	_, err := NewReader(strings.NewReader("BT"))
	if err == nil {
		t.Fatalf("short header accepted")
	}
}

func TestReaderTruncatedOpsRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Branch(0x10, true)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// append a bare ops marker with no count
	buf.WriteByte(0)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay(Discard); err == nil {
		t.Fatalf("truncated ops record accepted")
	}
}

func TestReaderCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty trace Next = %v, want io.EOF", err)
	}
}

func TestWriterSkipsZeroOps(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Ops(0)
	w.Flush()
	if buf.Len() != len("BTRC1\n") {
		t.Fatalf("zero-ops record was written (%d bytes)", buf.Len())
	}
}

// Delta encoding should keep clustered streams compact: consecutive nearby
// PCs must average only a couple of bytes per branch.
func TestFileCompactness(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Branch(0x1200_0000+uint64(i%32)*4, i%3 == 0)
	}
	w.Flush()
	if perBranch := float64(buf.Len()) / 10000; perBranch > 2.0 {
		t.Fatalf("%.2f bytes/branch for a clustered stream", perBranch)
	}
}
