package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// flatSink is a BlockSink that flattens delivered blocks back into a
// normalized event stream: one entry per branch carrying the straight-line
// run charged before it, plus a trailing run. Copying matters — the decoder
// reuses the block arrays.
type flatSink struct {
	pcs   []uint64
	taken []bool
	ops   []uint64
	tail  uint64
}

func (s *flatSink) RunBlock(pcs []uint64, taken []bool, ops []uint64) {
	// A block may arrive after a bare Ops call only at stream end, so any
	// accumulated tail before a block is a contract violation worth loud
	// failure in tests.
	if s.tail != 0 {
		panic("flatSink: RunBlock after a trailing Ops")
	}
	s.pcs = append(s.pcs, pcs...)
	s.taken = append(s.taken, taken...)
	s.ops = append(s.ops, ops...)
}

func (s *flatSink) Ops(n uint64) { s.tail += n }

// flatRecorder normalizes a per-event Recorder stream the same way, so the
// two decoders compare on semantics rather than Ops-call granularity (the
// Recorder contract lets producers split or coalesce straight-line runs).
type flatRecorder struct {
	flat    flatSink
	pending uint64
}

func (r *flatRecorder) Branch(pc uint64, taken bool) {
	r.flat.pcs = append(r.flat.pcs, pc)
	r.flat.taken = append(r.flat.taken, taken)
	r.flat.ops = append(r.flat.ops, r.pending)
	r.pending = 0
}

func (r *flatRecorder) Ops(n uint64) { r.pending += n }

func (r *flatRecorder) stream() *flatSink {
	r.flat.tail += r.pending
	r.pending = 0
	return &r.flat
}

func sameStream(t *testing.T, label string, got, want *flatSink) {
	t.Helper()
	if len(got.pcs) != len(want.pcs) {
		t.Fatalf("%s: %d branches, want %d", label, len(got.pcs), len(want.pcs))
	}
	for i := range got.pcs {
		if got.pcs[i] != want.pcs[i] || got.taken[i] != want.taken[i] || got.ops[i] != want.ops[i] {
			t.Fatalf("%s: event %d = (%#x,%v,+%d), want (%#x,%v,+%d)", label, i,
				got.pcs[i], got.taken[i], got.ops[i], want.pcs[i], want.taken[i], want.ops[i])
		}
	}
	if got.tail != want.tail {
		t.Fatalf("%s: trailing ops %d, want %d", label, got.tail, want.tail)
	}
}

// encodeEvents runs an event sequence through a ChunkWriter and returns the
// single chunk.
func encodeEvents(in []event) []byte {
	var w ChunkWriter
	for _, e := range in {
		if e.br {
			w.Branch(e.pc, e.taken)
		} else {
			w.Ops(e.ops)
		}
	}
	return w.Cut()
}

// blockTestStreams is the valid-chunk corpus shared by the differential
// tests: edge shapes (empty, ops-only, single branch) plus generated
// streams with delta, absolute-escape and coalescing records.
func blockTestStreams() [][]event {
	streams := [][]event{
		nil,
		{{ops: 7}},
		{{pc: 0x1_2000_0000, taken: true, br: true}},
		{
			{ops: 3},
			{pc: 0x1_2000_0000, taken: true, br: true},
			{ops: 1}, {ops: 2}, // coalesced by the writer
			{pc: 0x1_2000_0010, taken: false, br: true},
			{pc: math.MaxUint64, taken: true, br: true}, // absolute escape
			{pc: 4, taken: false, br: true},
			{ops: 9}, // trailing run
		},
	}
	var gen []event
	pc := uint64(0x1_2000_0000)
	s := uint64(99)
	for i := 0; i < 13_000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		if s%5 == 0 {
			gen = append(gen, event{ops: s % 300})
		} else {
			pc += (s >> 32 % 64) * 4
			gen = append(gen, event{pc: pc, taken: s>>60%2 == 0, br: true})
		}
	}
	return append(streams, gen)
}

// TestDecodeChunkBlocksMatchesDecodeChunk is the decoder differential: for
// valid chunks of every shape, and for every block capacity including sizes
// that land boundaries at awkward offsets, the block decoder must deliver
// exactly the stream DecodeChunk delivers.
func TestDecodeChunkBlocksMatchesDecodeChunk(t *testing.T) {
	for si, in := range blockTestStreams() {
		data := encodeEvents(in)
		var ref flatRecorder
		if err := DecodeChunk(data, &ref); err != nil {
			t.Fatalf("stream %d: DecodeChunk: %v", si, err)
		}
		want := ref.stream()
		for _, maxEv := range []int{1, 2, 3, 7, 100, DefaultBlockEvents} {
			var got flatSink
			buf := BlockBuf{Max: maxEv}
			if err := DecodeChunkBlocks(data, &got, &buf); err != nil {
				t.Fatalf("stream %d max %d: DecodeChunkBlocks: %v", si, maxEv, err)
			}
			sameStream(t, testLabel(si, maxEv), &got, want)
		}
	}
}

func testLabel(si, maxEv int) string {
	return "stream " + string(rune('0'+si)) + " max " + string(rune('0'+maxEv%10))
}

// TestDecodeChunkBlocksMalformed locks the error contract to DecodeChunk's:
// for every truncation and a corpus of corrupt inputs, both decoders must
// return the same error (or both succeed) and the block decoder must have
// delivered exactly the prefix the scalar decoder delivered.
func TestDecodeChunkBlocksMalformed(t *testing.T) {
	valid := encodeEvents(blockTestStreams()[3])
	inputs := [][]byte{
		bytes.Repeat([]byte{0x80}, 12),      // unterminated varint
		{chunkOps},                          // ops record missing its count
		{chunkAbs, 0x90},                    // absolute pc truncated
		{chunkAbs, 0x10, 0x05},              // outcome > 1
		append([]byte{5, 9}, 0x80),          // valid deltas then truncation
		binary.AppendUvarint(nil, 1<<40|17), // overlong header value
	}
	for cut := 0; cut <= len(valid); cut++ {
		inputs = append(inputs, valid[:cut])
	}
	for ii, data := range inputs {
		var ref flatRecorder
		refErr := DecodeChunk(data, &ref)
		want := ref.stream()
		for _, maxEv := range []int{1, 3, DefaultBlockEvents} {
			var got flatSink
			buf := BlockBuf{Max: maxEv}
			gotErr := DecodeChunkBlocks(data, &got, &buf)
			if (gotErr == nil) != (refErr == nil) ||
				(gotErr != nil && gotErr.Error() != refErr.Error()) {
				t.Fatalf("input %d max %d: error %v, DecodeChunk says %v", ii, maxEv, gotErr, refErr)
			}
			if gotErr != nil && !errors.Is(gotErr, ErrMalformedChunk) {
				t.Fatalf("input %d: error %v does not wrap ErrMalformedChunk", ii, gotErr)
			}
			sameStream(t, "prefix", &got, want)
		}
	}
}

// TestBatcherEncodesIdentically is the round-trip identity for the
// Recorder→BlockSink adapter: recording a stream through a Batcher whose
// sink re-expands blocks into a second ChunkWriter must produce the exact
// bytes of recording into a ChunkWriter directly — the strongest possible
// statement that batching preserves the stream.
func TestBatcherEncodesIdentically(t *testing.T) {
	for si, in := range blockTestStreams() {
		want := encodeEvents(in)
		for _, blockEvents := range []int{1, 3, 64, 0} {
			var rw ChunkWriter
			b := NewBatcher(expandSink{&rw}, blockEvents)
			for _, e := range in {
				if e.br {
					b.Branch(e.pc, e.taken)
				} else {
					b.Ops(e.ops)
				}
			}
			b.Flush()
			if got := rw.Cut(); !bytes.Equal(got, want) {
				t.Fatalf("stream %d blockEvents %d: re-encoded bytes differ (%d vs %d bytes)",
					si, blockEvents, len(got), len(want))
			}
			// The Batcher must stay usable after Flush.
			b.Branch(0x1000, true)
			b.Flush()
			if rw.Cut() == nil {
				t.Fatalf("stream %d: Batcher dead after Flush", si)
			}
		}
	}
}

// expandSink replays blocks back into a Recorder, event by event.
type expandSink struct{ rec Recorder }

func (s expandSink) RunBlock(pcs []uint64, taken []bool, ops []uint64) {
	for i, pc := range pcs {
		if ops[i] != 0 {
			s.rec.Ops(ops[i])
		}
		s.rec.Branch(pc, taken[i])
	}
}

func (s expandSink) Ops(n uint64) { s.rec.Ops(n) }

// TestBatcherBlockBoundaries pins the delivery geometry: a capacity-k
// Batcher delivers full blocks of exactly k events as soon as the k-th
// branch is recorded, and Flush delivers the partial remainder plus any
// trailing straight-line run as a bare Ops call.
func TestBatcherBlockBoundaries(t *testing.T) {
	var sizes []int
	var tail uint64
	sink := &funcSink{
		run: func(pcs []uint64, taken []bool, ops []uint64) { sizes = append(sizes, len(pcs)) },
		ops: func(n uint64) { tail += n },
	}
	b := NewBatcher(sink, 3)
	for i := 0; i < 8; i++ {
		b.Branch(uint64(0x1000+4*i), i%2 == 0)
	}
	b.Ops(41)
	b.Flush()
	if want := []int{3, 3, 2}; len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 2 {
		t.Fatalf("block sizes %v, want %v", sizes, want)
	}
	if tail != 41 {
		t.Fatalf("trailing ops %d, want 41", tail)
	}
	// Flush on an empty Batcher delivers nothing.
	sizes, tail = nil, 0
	b.Flush()
	if len(sizes) != 0 || tail != 0 {
		t.Fatalf("empty Flush delivered %v blocks, %d tail ops", sizes, tail)
	}
}

type funcSink struct {
	run func(pcs []uint64, taken []bool, ops []uint64)
	ops func(n uint64)
}

func (s *funcSink) RunBlock(pcs []uint64, taken []bool, ops []uint64) { s.run(pcs, taken, ops) }
func (s *funcSink) Ops(n uint64)                                      { s.ops(n) }
