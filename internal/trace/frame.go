package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Chunk framing (the trace format's version-3 container).
//
// Version 2 stores chunks back to back with no integrity metadata: a
// flipped bit in a spilled chunk either fails structurally (a truncated
// varint) or — far worse — decodes into a *different* branch stream and
// silently poisons every arm replaying it. Version 3 wraps each chunk in a
// self-describing frame:
//
//	uvarint len | crc32c (4 bytes, little-endian) | len payload bytes
//
// The payload is an unmodified version-2 chunk (chunk.go); the checksum is
// CRC32C (Castagnoli), hardware-accelerated on amd64/arm64 by hash/crc32,
// computed over the payload alone. The length prefix makes a frame
// skippable without decoding and turns a torn tail (a crash mid-append)
// into a detectable short frame instead of a misparse.
//
// CRC32C detects all single-bit and all burst errors up to 32 bits, which
// covers the realistic disk-corruption model (a flipped bit or a torn
// sector) rather than an adversarial one; untrusted trace ingestion should
// still sandbox what it decodes.

// frameCRCLen is the size of the encoded checksum field.
const frameCRCLen = 4

// maxFramePayload bounds a frame's declared payload length. Real chunks are
// ~64 KiB (the writer's seal threshold); the bound keeps a corrupt length
// prefix from turning into a multi-gigabyte allocation.
const maxFramePayload = 1 << 30

// castagnoli is the CRC32C table, built once.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C (Castagnoli) checksum of data, the per-chunk
// integrity check of the version-3 framing.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ErrCorrupt is returned when stored trace data fails its integrity check:
// a frame checksum mismatch, a torn (short) frame, or structurally invalid
// records. ErrMalformedChunk wraps it, so errors.Is(err, ErrCorrupt)
// matches every way a chunk can be bad.
var ErrCorrupt = errors.New("trace: corrupt data")

// AppendFrame appends one version-3 frame holding payload to dst and
// returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	return append(AppendFrameHeader(dst, len(payload), Checksum(payload)), payload...)
}

// AppendFrameHeader appends the header of a version-3 frame — the length
// prefix and checksum — for a payload of n bytes whose CRC32C is crc. It
// lets writers that already hold the checksum (the replay engine computes
// it at capture) frame a chunk without re-hashing or copying the payload.
func AppendFrameHeader(dst []byte, n int, crc uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(n))
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// FrameOverhead returns the frame header size for a payload of n bytes:
// the length varint plus the checksum.
func FrameOverhead(n int) int {
	return binary.PutUvarint(make([]byte, binary.MaxVarintLen64), uint64(n)) + frameCRCLen
}

// DecodeFrame reads one frame from the front of data, verifies its
// checksum, and returns the payload and the remaining bytes. The payload
// aliases data; copy it to retain it. A short, overlong or
// checksum-mismatched frame returns an error wrapping ErrCorrupt.
func DecodeFrame(data []byte) (payload, rest []byte, err error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, fmt.Errorf("%w: frame length", ErrCorrupt)
	}
	if n > maxFramePayload {
		return nil, nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, n)
	}
	data = data[k:]
	if len(data) < frameCRCLen+int(n) {
		return nil, nil, fmt.Errorf("%w: truncated frame (want %d payload bytes, have %d)", ErrCorrupt, n, len(data)-frameCRCLen)
	}
	want := binary.LittleEndian.Uint32(data)
	payload = data[frameCRCLen : frameCRCLen+int(n)]
	if got := Checksum(payload); got != want {
		return nil, nil, fmt.Errorf("%w: frame checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	return payload, data[frameCRCLen+int(n):], nil
}

// Verify checks payload against its stored CRC32C, returning an error
// wrapping ErrCorrupt on mismatch.
func Verify(payload []byte, crc uint32) error {
	if got := Checksum(payload); got != crc {
		return fmt.Errorf("%w: chunk checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, crc, got)
	}
	return nil
}

// DecodeFramedChunk verifies one frame and replays its chunk payload into
// rec. Corruption — of the frame or of the records inside it — returns an
// error wrapping ErrCorrupt before rec sees a single event of the bad
// chunk; trailing bytes after the frame are rejected too, so a framed
// chunk either replays whole or not at all.
func DecodeFramedChunk(data []byte, rec Recorder) error {
	payload, rest, err := DecodeFrame(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after frame", ErrCorrupt, len(rest))
	}
	return DecodeChunk(payload, rec)
}
