package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// event is one recorded call, for comparing streams in tests.
type event struct {
	pc    uint64
	taken bool
	ops   uint64
	br    bool
}

// eventLog records the exact call sequence a Recorder receives.
type eventLog struct{ events []event }

func (l *eventLog) Branch(pc uint64, taken bool) {
	l.events = append(l.events, event{pc: pc, taken: taken, br: true})
}

func (l *eventLog) Ops(n uint64) { l.events = append(l.events, event{ops: n}) }

// totals sums the log the way every real Recorder does.
func (l *eventLog) totals() Counts {
	var c Counts
	for _, e := range l.events {
		if e.br {
			c.Branch(e.pc, e.taken)
		} else {
			c.Ops(e.ops)
		}
	}
	return c
}

// branches extracts the branch subsequence.
func (l *eventLog) branches() []event {
	var out []event
	for _, e := range l.events {
		if e.br {
			out = append(out, e)
		}
	}
	return out
}

func TestChunkRoundTrip(t *testing.T) {
	var w ChunkWriter
	in := []event{
		{pc: 0x1_2000_0000, taken: true, br: true},
		{ops: 7},
		{ops: 3}, // coalesces with the previous record
		{pc: 0x1_2000_0010, taken: false, br: true},
		{pc: 0, taken: true, br: true},              // delta to zero
		{pc: math.MaxUint64, taken: true, br: true}, // escape: huge delta
		{pc: math.MaxUint64, taken: false, br: true},
		{ops: 1 << 40},
		{pc: 1 << 63, taken: true, br: true}, // escape again
	}
	for _, e := range in {
		if e.br {
			w.Branch(e.pc, e.taken)
		} else {
			w.Ops(e.ops)
		}
	}
	var got eventLog
	if err := DecodeChunk(w.Cut(), &got); err != nil {
		t.Fatal(err)
	}
	// Branch sequence must be preserved exactly.
	wantLog := &eventLog{events: in}
	wantBr, gotBr := wantLog.branches(), got.branches()
	if len(wantBr) != len(gotBr) {
		t.Fatalf("branch count: got %d, want %d", len(gotBr), len(wantBr))
	}
	for i := range wantBr {
		if wantBr[i] != gotBr[i] {
			t.Errorf("branch %d: got %+v, want %+v", i, gotBr[i], wantBr[i])
		}
	}
	// Ops may coalesce, but the totals must match.
	if got.totals() != wantLog.totals() {
		t.Errorf("totals: got %+v, want %+v", got.totals(), wantLog.totals())
	}
}

// TestChunkSelfContained proves a chunk decodes correctly without the PC
// state of its predecessors: the first branch of every chunk is absolute.
func TestChunkSelfContained(t *testing.T) {
	var w ChunkWriter
	w.Branch(0x4000, true)
	w.Branch(0x4008, false)
	first := w.Cut()
	w.Branch(0x4010, true) // delta from 0x4008 across the cut
	w.Branch(0x4018, true)
	second := w.Cut()
	if first == nil || second == nil {
		t.Fatal("expected two non-empty chunks")
	}
	var got eventLog
	if err := DecodeChunk(second, &got); err != nil {
		t.Fatal(err)
	}
	want := []event{{pc: 0x4010, taken: true, br: true}, {pc: 0x4018, taken: true, br: true}}
	if len(got.events) != 2 || got.events[0] != want[0] || got.events[1] != want[1] {
		t.Errorf("standalone second chunk: got %+v, want %+v", got.events, want)
	}
}

func TestChunkCutEmpty(t *testing.T) {
	var w ChunkWriter
	if c := w.Cut(); c != nil {
		t.Errorf("empty Cut: got %d bytes, want nil", len(c))
	}
	w.Branch(4, true)
	w.Cut()
	if c := w.Cut(); c != nil {
		t.Errorf("second Cut: got %d bytes, want nil", len(c))
	}
}

func TestDecodeChunkMalformed(t *testing.T) {
	overlong := bytes.Repeat([]byte{0x80}, 11) // uvarint longer than 64 bits
	cases := map[string][]byte{
		"truncated header":       {0x80},
		"overlong header":        overlong,
		"ops without count":      {chunkOps},
		"ops truncated count":    {chunkOps, 0x80},
		"abs without pc":         {chunkAbs},
		"abs truncated pc":       {chunkAbs, 0x80},
		"abs without outcome":    {chunkAbs, 0x10},
		"abs outcome out of set": {chunkAbs, 0x10, 0x02},
	}
	for name, data := range cases {
		if err := DecodeChunk(data, Discard); !errors.Is(err, ErrMalformedChunk) {
			t.Errorf("%s: got %v, want ErrMalformedChunk", name, err)
		}
	}
	if err := DecodeChunk(nil, Discard); err != nil {
		t.Errorf("empty chunk: got %v, want nil", err)
	}
}

// TestChunkFileReader proves the spill/export framing: a ChunkFileHeader
// followed by concatenated chunks is a trace file NewReader replays.
func TestChunkFileReader(t *testing.T) {
	var w ChunkWriter
	var want eventLog
	rec := Tee(&want, &w)
	rec.Branch(0x8000, true)
	rec.Ops(12)
	rec.Branch(0x8004, false)
	first := w.Cut()
	rec.Ops(3)
	rec.Branch(1<<62, true) // large jump, still lossless in version 2
	second := w.Cut()

	var buf bytes.Buffer
	buf.Write(ChunkFileHeader())
	buf.Write(first)
	buf.Write(second)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got eventLog
	if _, err := r.Replay(&got); err != nil {
		t.Fatal(err)
	}
	wantBr, gotBr := want.branches(), got.branches()
	if len(wantBr) != len(gotBr) {
		t.Fatalf("branch count: got %d, want %d", len(gotBr), len(wantBr))
	}
	for i := range wantBr {
		if wantBr[i] != gotBr[i] {
			t.Errorf("branch %d: got %+v, want %+v", i, gotBr[i], wantBr[i])
		}
	}
	if got.totals() != want.totals() {
		t.Errorf("totals: got %+v, want %+v", got.totals(), want.totals())
	}
}

// fuzzEvents derives a deterministic event sequence from raw fuzz bytes:
// 9 bytes per event — a kind byte and a 64-bit payload.
func fuzzEvents(data []byte) []event {
	var out []event
	for len(data) >= 9 {
		kind, payload := data[0], binary.LittleEndian.Uint64(data[1:9])
		data = data[9:]
		if kind%3 == 0 {
			out = append(out, event{ops: payload})
		} else {
			out = append(out, event{pc: payload, taken: kind%2 == 1, br: true})
		}
	}
	return out
}

// FuzzChunkRoundTrip proves encode→decode is lossless for arbitrary
// (PC, taken) sequences — including PCs above 2^60, which the version-1
// file format would truncate — across chunk cuts at arbitrary points.
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	seed := make([]byte, 0, 64)
	for _, e := range []event{
		{pc: 0x1_2000_0000, taken: true, br: true},
		{ops: 42},
		{pc: math.MaxUint64, taken: false, br: true},
		{pc: 1 << 61, taken: true, br: true},
	} {
		var b [9]byte
		if e.br {
			b[0] = 1
			if !e.taken {
				b[0] = 5
			}
			binary.LittleEndian.PutUint64(b[1:], e.pc)
		} else {
			b[0] = 0
			binary.LittleEndian.PutUint64(b[1:], e.ops)
		}
		seed = append(seed, b[:]...)
	}
	f.Add(seed, uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, cutEvery uint8) {
		in := fuzzEvents(data)
		var w ChunkWriter
		var chunks [][]byte
		for i, e := range in {
			if e.br {
				w.Branch(e.pc, e.taken)
			} else {
				w.Ops(e.ops)
			}
			if cutEvery > 0 && (i+1)%int(cutEvery) == 0 {
				if c := w.Cut(); c != nil {
					chunks = append(chunks, c)
				}
			}
		}
		if c := w.Cut(); c != nil {
			chunks = append(chunks, c)
		}
		var got eventLog
		for _, c := range chunks {
			if err := DecodeChunk(c, &got); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
		want := &eventLog{events: in}
		wantBr, gotBr := want.branches(), got.branches()
		if len(wantBr) != len(gotBr) {
			t.Fatalf("branch count: got %d, want %d", len(gotBr), len(wantBr))
		}
		for i := range wantBr {
			if wantBr[i] != gotBr[i] {
				t.Fatalf("branch %d: got %+v, want %+v", i, gotBr[i], wantBr[i])
			}
		}
		if got.totals() != want.totals() {
			t.Fatalf("totals: got %+v, want %+v", got.totals(), want.totals())
		}
	})
}

// FuzzDecodeChunk feeds arbitrary bytes to the chunk decoder: it must
// return an error or succeed, never panic. The corpus seeds valid chunks
// plus bit-flipped mutants of them — the raw decoder has no checksum, so a
// mutant may decode into a different-but-valid stream; the invariant here
// is purely "no panic, no hang" (FuzzDecodeFramedChunk holds the stronger
// detect-or-decode-identically property the framed format adds).
func FuzzDecodeChunk(f *testing.F) {
	var w ChunkWriter
	w.Branch(0x1_2000_0000, true)
	w.Ops(9)
	w.Branch(0x1_2000_0008, false)
	valid := w.Cut()
	f.Add(valid)
	f.Add([]byte{chunkAbs, 0x10, 0x02})
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	// bit-flip corruption corpus: every single-bit mutant of the valid chunk
	for bit := 0; bit < len(valid)*8; bit++ {
		mutant := append([]byte(nil), valid...)
		mutant[bit/8] ^= 1 << (bit % 8)
		f.Add(mutant)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Counts
		_ = DecodeChunk(data, &c)
	})
}

// FuzzDecodeFramedChunk is the framed decoder's corruption contract: for an
// arbitrary event stream, flipping any single bit of its encoded frame must
// yield an error wrapping ErrCorrupt — never a panic, and never a silently
// different record stream. With no flip, decode must reproduce the stream
// exactly.
func FuzzDecodeFramedChunk(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	seed := make([]byte, 0, 64)
	for _, e := range []event{
		{pc: 0x1_2000_0000, taken: true, br: true},
		{ops: 42},
		{pc: math.MaxUint64, taken: false, br: true},
	} {
		var b [9]byte
		if e.br {
			b[0] = 1
			if !e.taken {
				b[0] = 5
			}
			binary.LittleEndian.PutUint64(b[1:], e.pc)
		} else {
			binary.LittleEndian.PutUint64(b[1:], e.ops)
		}
		seed = append(seed, b[:]...)
	}
	f.Add(seed, uint32(17))
	f.Add(seed, uint32(0))

	f.Fuzz(func(t *testing.T, data []byte, flip uint32) {
		in := fuzzEvents(data)
		var w ChunkWriter
		for _, e := range in {
			if e.br {
				w.Branch(e.pc, e.taken)
			} else {
				w.Ops(e.ops)
			}
		}
		payload := w.Cut()
		frame := AppendFrame(nil, payload)

		// Pristine decode reproduces the stream.
		var got eventLog
		if err := DecodeFramedChunk(frame, &got); err != nil {
			t.Fatalf("pristine frame: %v", err)
		}
		want := &eventLog{events: in}
		wantBr, gotBr := want.branches(), got.branches()
		if len(wantBr) != len(gotBr) {
			t.Fatalf("branch count: got %d, want %d", len(gotBr), len(wantBr))
		}
		for i := range wantBr {
			if wantBr[i] != gotBr[i] {
				t.Fatalf("branch %d: got %+v, want %+v", i, gotBr[i], wantBr[i])
			}
		}
		if got.totals() != want.totals() {
			t.Fatalf("totals: got %+v, want %+v", got.totals(), want.totals())
		}

		// Any single-bit flip is detected: CRC32C catches all 1-bit errors,
		// and a flip inside the length varint either breaks the frame bound
		// or the checksum.
		bit := int(flip) % (len(frame) * 8)
		mutated := append([]byte(nil), frame...)
		mutated[bit/8] ^= 1 << (bit % 8)
		var rec Counts
		if err := DecodeFramedChunk(mutated, &rec); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", bit, err)
		}
	})
}
