package trace

import (
	"encoding/binary"
	"fmt"
)

// Chunk encoding (the trace format's version-2 records).
//
// A chunk is a byte slice holding a run of uvarint records:
//
//	0, n        — an Ops record charging n straight-line instructions
//	1, pc, t    — an absolute branch at pc with outcome t (0 or 1)
//	v ≥ 2       — a delta branch: w = v-2, taken = w&1,
//	              pc = previous branch PC + unzigzag(w>>1)
//
// Chunks are self-contained: a ChunkWriter emits the first branch of every
// chunk in absolute form, so a chunk decodes without the PC state of its
// predecessors, replay cursors can pick up a stream mid-way, and any
// concatenation of chunks — including a suffix of a spilled stream — is
// itself a valid record stream. The absolute form doubles as the overflow
// escape: a delta whose zig-zag needs more than 62 bits (only adversarial
// PC walks) is stored absolutely, which keeps the encoding lossless over
// the full 64-bit address space, unlike the version-1 file records that
// truncate PCs to 60 bits to pack delta, outcome and discriminator into a
// single varint.
//
// Consecutive Ops calls are coalesced into one record. Recorders only ever
// sum instruction counts between branches, so every downstream total is
// unchanged; what is not preserved is the exact number of Ops calls.

const (
	chunkOps = 0 // followed by the instruction count
	chunkAbs = 1 // followed by the PC and the outcome bit
	// values ≥ chunkDelta encode a delta branch
	chunkDelta = 2
)

// maxDeltaZig is the largest zig-zagged delta that still fits a delta
// branch record; anything larger is stored in absolute form.
const maxDeltaZig = uint64(1)<<62 - 1

// appendUvarint is binary.AppendUvarint with the one- and two-byte cases —
// nearly every record header, delta and ops count on real streams — inlined
// ahead of the generic loop. The emitted bytes are identical.
func appendUvarint(buf []byte, v uint64) []byte {
	if v < 1<<7 {
		return append(buf, byte(v))
	}
	if v < 1<<14 {
		return append(buf, byte(v)|0x80, byte(v>>7))
	}
	return binary.AppendUvarint(buf, v)
}

// ErrMalformedChunk is returned by DecodeChunk for input that is not a
// valid chunk: a truncated or overlong varint, or an impossible field. It
// wraps ErrCorrupt, so callers handling corruption generically can match
// either sentinel with errors.Is.
var ErrMalformedChunk = fmt.Errorf("%w: malformed chunk", ErrCorrupt)

// ChunkWriter encodes a branch stream into self-contained chunks. It
// implements Recorder; call Cut to take the bytes encoded so far and start
// a new chunk. The zero value is ready to use.
type ChunkWriter struct {
	buf     []byte
	lastPC  uint64
	pending uint64
	rel     bool // a delta branch may be emitted; false at chunk start
}

// Ops implements Recorder. Counts accumulate until the next branch or Cut.
func (w *ChunkWriter) Ops(n uint64) { w.pending += n }

// Branch implements Recorder.
func (w *ChunkWriter) Branch(pc uint64, taken bool) {
	w.flushOps()
	t := uint64(0)
	if taken {
		t = 1
	}
	if w.rel {
		if zz := zigzag(int64(pc - w.lastPC)); zz <= maxDeltaZig {
			w.buf = appendUvarint(w.buf, chunkDelta+(zz<<1|t))
			w.lastPC = pc
			return
		}
	}
	w.buf = append(w.buf, chunkAbs)
	w.buf = appendUvarint(w.buf, pc)
	w.buf = append(w.buf, byte(t))
	w.rel = true
	w.lastPC = pc
}

func (w *ChunkWriter) flushOps() {
	if w.pending == 0 {
		return
	}
	w.buf = append(w.buf, chunkOps)
	w.buf = appendUvarint(w.buf, w.pending)
	w.pending = 0
}

// Len reports the encoded bytes buffered so far, excluding any Ops counts
// still coalescing (they are flushed by the next Branch or Cut).
func (w *ChunkWriter) Len() int { return len(w.buf) }

// Cut flushes pending Ops and returns the finished chunk, or nil when
// nothing was recorded since the last Cut. The writer keeps its PC state
// but starts the next chunk with a fresh backing array and an absolute
// first branch, so the returned slice is never written to again.
func (w *ChunkWriter) Cut() []byte {
	w.flushOps()
	if len(w.buf) == 0 {
		return nil
	}
	out := w.buf
	// Pre-size the next chunk from this one: steady-state producers cut at a
	// fixed threshold, so the next chunk's size is known and the per-record
	// appends skip their growth copies.
	w.buf = make([]byte, 0, len(out)+len(out)/8)
	w.rel = false
	return out
}

func malformedChunk(off int, what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrMalformedChunk, what, off)
}

// DecodeChunk replays one encoded chunk into rec. Malformed input returns
// an error (never a panic); rec may have received a prefix of the chunk by
// then. Panics raised by rec — e.g. a sim.Runner's cooperative-cancellation
// Stop — propagate to the caller.
func DecodeChunk(data []byte, rec Recorder) error {
	var lastPC uint64
	for i := 0; i < len(data); {
		// One- and two-byte headers (nearly every record) decode inline;
		// the generic loop handles longer and malformed varints.
		var v uint64
		if b := data[i]; b < 0x80 {
			v = uint64(b)
			i++
		} else if i+1 < len(data) && data[i+1] < 0x80 {
			v = uint64(b&0x7f) | uint64(data[i+1])<<7
			i += 2
		} else {
			vv, n := binary.Uvarint(data[i:])
			if n <= 0 {
				return malformedChunk(i, "record header")
			}
			v = vv
			i += n
		}
		switch v {
		case chunkOps:
			c, n := binary.Uvarint(data[i:])
			if n <= 0 {
				return malformedChunk(i, "ops count")
			}
			i += n
			rec.Ops(c)
		case chunkAbs:
			pc, n := binary.Uvarint(data[i:])
			if n <= 0 {
				return malformedChunk(i, "absolute branch pc")
			}
			i += n
			t, n := binary.Uvarint(data[i:])
			if n <= 0 || t > 1 {
				return malformedChunk(i, "absolute branch outcome")
			}
			i += n
			lastPC = pc
			rec.Branch(pc, t == 1)
		default:
			w := v - chunkDelta
			lastPC += uint64(unzigzag(w >> 1))
			rec.Branch(lastPC, w&1 == 1)
		}
	}
	return nil
}
