package trace

// Stop is the panic value cooperative cancellation uses to unwind a branch
// stream producer. Producers drive Recorders through plain callbacks with no
// error return, so when a context expires mid-stream the instrumentation
// layer panics with a Stop carrying the context's error, and the run wrapper
// (workload.RunProgram, sim helpers) recovers it and returns Err as an
// ordinary error. A Stop never escapes to user code through those wrappers.
type Stop struct {
	// Err is the cancellation cause, typically context.Canceled or
	// context.DeadlineExceeded.
	Err error
}

// AsStop reports whether a recovered panic value is a cancellation Stop,
// returning its error. Use it in a deferred recover around stream producers:
//
//	defer func() {
//		if r := recover(); r != nil {
//			if e, ok := trace.AsStop(r); ok {
//				err = e
//				return
//			}
//			panic(r)
//		}
//	}()
func AsStop(r any) (error, bool) {
	s, ok := r.(Stop)
	if !ok {
		return nil, false
	}
	return s.Err, true
}
