package trace

import "encoding/binary"

// Block decoding: the batch counterpart of DecodeChunk. Instead of one
// Recorder call per record, the decoder gathers decoded branches into
// parallel arrays and hands the sink whole blocks, so a consumer with a
// devirtualized kernel (sim.Runner over a predictor.BatchSim) pays no
// per-event dispatch. Straight-line instruction runs are attached to the
// branch that follows them — recorders accept Ops at any granularity, and
// the chunk writer already coalesces consecutive Ops calls into one record,
// so the delivered stream is semantically identical to DecodeChunk's.

// BlockSink consumes a decoded branch stream in blocks. The contract
// mirrors Recorder, block-wise: RunBlock delivers a run of branches in
// program order, where ops[i] straight-line instructions are charged
// immediately before the branch (pcs[i], taken[i]); the three slices have
// equal length and are reused by the decoder, so implementations must not
// retain them. Ops charges a straight-line run not followed by a branch in
// the same chunk (a trailing run, or one cut off by malformed input).
type BlockSink interface {
	RunBlock(pcs []uint64, taken []bool, ops []uint64)
	Ops(n uint64)
}

// SummedBlockSink is an optional BlockSink extension for feeders that
// already know a block's total straight-line instruction count — the
// replay engine's decoded-block cache computes it once at capture time.
// RunBlockSummed is RunBlock with opsSum = sum(ops); implementations may
// trust it and skip their own pass over the ops array.
type SummedBlockSink interface {
	BlockSink
	RunBlockSummed(pcs []uint64, taken []bool, ops []uint64, opsSum uint64)
}

// DefaultBlockEvents is the block capacity DecodeChunkBlocks uses for a
// zero BlockBuf: large enough to amortize per-block overhead, small enough
// that the three event arrays stay cache-resident (~68KB).
const DefaultBlockEvents = 4096

// Batcher adapts a BlockSink to the Recorder interface: it buffers the
// per-event stream into parallel block arrays and hands the sink whole
// blocks, so an instrumented workload can feed a block-wise consumer — a
// sim.Runner with a devirtualized kernel, the replay engine's capture —
// without two interface dispatches per branch. The delivered stream is
// exactly the recorded one: straight-line runs coalesce onto the branch
// that follows them (as the Recorder contract permits), and a trailing run
// is delivered by Flush as a bare Ops call, mirroring DecodeChunkBlocks.
// The block arrays are reused across flushes, so the sink must not retain
// them — the standard BlockSink contract.
type Batcher struct {
	sink    BlockSink
	pcs     []uint64
	taken   []bool
	ops     []uint64
	pending uint64
}

// NewBatcher returns a Batcher delivering blocks of up to blockEvents
// branches to sink; blockEvents <= 0 means DefaultBlockEvents.
func NewBatcher(sink BlockSink, blockEvents int) *Batcher {
	if blockEvents <= 0 {
		blockEvents = DefaultBlockEvents
	}
	return &Batcher{
		sink:  sink,
		pcs:   make([]uint64, 0, blockEvents),
		taken: make([]bool, 0, blockEvents),
		ops:   make([]uint64, 0, blockEvents),
	}
}

// Ops implements Recorder. Runs accumulate until the next branch or Flush.
func (b *Batcher) Ops(n uint64) { b.pending += n }

// Branch implements Recorder.
func (b *Batcher) Branch(pc uint64, taken bool) {
	b.pcs = append(b.pcs, pc)
	b.taken = append(b.taken, taken)
	b.ops = append(b.ops, b.pending)
	b.pending = 0
	if len(b.pcs) == cap(b.pcs) {
		b.flush()
	}
}

func (b *Batcher) flush() {
	if len(b.pcs) == 0 {
		return
	}
	b.sink.RunBlock(b.pcs, b.taken, b.ops)
	b.pcs, b.taken, b.ops = b.pcs[:0], b.taken[:0], b.ops[:0]
}

// Flush delivers everything buffered, including a trailing straight-line
// run. Call it when the stream ends; the Batcher stays usable afterwards,
// so a producer may keep recording and Flush again.
func (b *Batcher) Flush() {
	b.flush()
	if b.pending > 0 {
		b.sink.Ops(b.pending)
		b.pending = 0
	}
}

// BlockBuf holds the reusable decode arrays of DecodeChunkBlocks. The zero
// value is ready to use; keep one per replay cursor and pass it to every
// call so the arrays are allocated once.
type BlockBuf struct {
	// Max bounds the events per delivered block; 0 means
	// DefaultBlockEvents. Tests use small values to force block boundaries
	// at awkward offsets.
	Max int

	pcs   []uint64
	taken []bool
	ops   []uint64
}

// DecodeChunkBlocks replays one encoded chunk into sink, block-wise. It
// accepts exactly the inputs DecodeChunk accepts, delivers exactly the same
// event stream (with consecutive straight-line runs summed, as the Recorder
// contract permits), and returns exactly the same errors; on malformed
// input the sink has received every record before the malformed one. Panics
// raised by sink — e.g. a sim.Runner's cooperative-cancellation Stop —
// propagate to the caller.
func DecodeChunkBlocks(data []byte, sink BlockSink, buf *BlockBuf) error {
	maxEv := buf.Max
	if maxEv <= 0 {
		maxEv = DefaultBlockEvents
	}
	if cap(buf.pcs) < maxEv {
		buf.pcs = make([]uint64, 0, maxEv)
		buf.taken = make([]bool, 0, maxEv)
		buf.ops = make([]uint64, 0, maxEv)
	}
	pcs, tkn, ops := buf.pcs[:0], buf.taken[:0], buf.ops[:0]
	var pending uint64 // straight-line run awaiting its branch
	var lastPC uint64
	errOff, errWhat := 0, ""
	for i := 0; i < len(data); {
		// Record headers — which for delta branches are the whole record —
		// are one or two bytes on real streams; decode those inline and fall
		// back to the generic loop only for longer (or malformed) varints.
		var v uint64
		if b := data[i]; b < 0x80 {
			v = uint64(b)
			i++
		} else if i+1 < len(data) && data[i+1] < 0x80 {
			v = uint64(b&0x7f) | uint64(data[i+1])<<7
			i += 2
		} else {
			vv, n := binary.Uvarint(data[i:])
			if n <= 0 {
				errOff, errWhat = i, "record header"
				goto malformed
			}
			v = vv
			i += n
		}
		switch {
		case v >= chunkDelta:
			w := v - chunkDelta
			lastPC += uint64(unzigzag(w >> 1))
			pcs = append(pcs, lastPC)
			tkn = append(tkn, w&1 == 1)
			ops = append(ops, pending)
			pending = 0
			if len(pcs) == maxEv {
				sink.RunBlock(pcs, tkn, ops)
				pcs, tkn, ops = pcs[:0], tkn[:0], ops[:0]
			}
		case v == chunkOps:
			var c uint64
			if i < len(data) && data[i] < 0x80 {
				c = uint64(data[i])
				i++
			} else {
				cc, n := binary.Uvarint(data[i:])
				if n <= 0 {
					errOff, errWhat = i, "ops count"
					goto malformed
				}
				c = cc
				i += n
			}
			pending += c
		default: // chunkAbs
			pc, n := binary.Uvarint(data[i:])
			if n <= 0 {
				errOff, errWhat = i, "absolute branch pc"
				goto malformed
			}
			i += n
			t, n := binary.Uvarint(data[i:])
			if n <= 0 || t > 1 {
				errOff, errWhat = i, "absolute branch outcome"
				goto malformed
			}
			i += n
			lastPC = pc
			pcs = append(pcs, pc)
			tkn = append(tkn, t == 1)
			ops = append(ops, pending)
			pending = 0
			if len(pcs) == maxEv {
				sink.RunBlock(pcs, tkn, ops)
				pcs, tkn, ops = pcs[:0], tkn[:0], ops[:0]
			}
		}
	}
	if len(pcs) > 0 {
		sink.RunBlock(pcs, tkn, ops)
	}
	if pending > 0 {
		sink.Ops(pending)
	}
	// Keep the (possibly grown) arrays for the next chunk.
	buf.pcs, buf.taken, buf.ops = pcs, tkn, ops
	return nil

malformed:
	// Prefix delivery: everything decoded before the malformed record has
	// reached the sink when the error returns, exactly like DecodeChunk.
	if len(pcs) > 0 {
		sink.RunBlock(pcs, tkn, ops)
	}
	if pending > 0 {
		sink.Ops(pending)
	}
	buf.pcs, buf.taken, buf.ops = pcs, tkn, ops
	return malformedChunk(errOff, errWhat)
}
