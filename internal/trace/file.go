package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format (version 1).
//
// The file starts with the 6-byte magic "BTRC1\n" followed by a stream of
// unsigned varints:
//
//	0              — an Ops record; the next uvarint is the instruction count
//	v > 0          — a branch record encoding (delta<<1 | taken) + 1, where
//	                 delta is the PC's zig-zag delta from the previous branch PC
//
// Delta encoding keeps files small because branch addresses are clustered:
// the hot loops of a workload revisit nearby PCs.
//
// Branch addresses are stored modulo 2^60 so that the zig-zag delta, the
// taken bit and the ops/branch discriminator all fit one 64-bit varint
// without overflow. Real address spaces are far below 60 bits.
//
// Version 2 ("BTRC2\n") carries the chunk records documented in chunk.go:
// self-contained chunks whose first branch is absolute, lossless over the
// full 64-bit address space. Version 3 ("BTRC3\n") wraps each of those
// chunks in a length-prefixed CRC32C frame (frame.go), so disk corruption
// and torn tails are detected instead of replayed; the replay engine's
// spilled and exported traces use it. Reader understands all three
// versions; Writer still emits version 1, whose single-varint records are
// smaller for the address ranges real workloads produce.

var traceMagic = []byte("BTRC1\n")

var traceMagic2 = []byte("BTRC2\n")

var traceMagic3 = []byte("BTRC3\n")

// ChunkFileHeader returns the header bytes of a version-2 (chunk-encoded)
// trace file. A valid file is this header followed by any concatenation of
// ChunkWriter chunks; NewReader decodes it like any other trace.
func ChunkFileHeader() []byte { return append([]byte(nil), traceMagic2...) }

// FramedFileHeader returns the header bytes of a version-3 (checksummed
// framed-chunk) trace file: this header followed by any concatenation of
// AppendFrame frames is a trace file NewReader decodes and verifies.
func FramedFileHeader() []byte { return append([]byte(nil), traceMagic3...) }

// ErrBadMagic is returned by NewReader when the input is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic, not a branch trace file")

// Writer encodes a branch event stream to an io.Writer. It implements
// Recorder; Close (or Flush) must be called to drain the internal buffer.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	err    error
	tmp    [2 * binary.MaxVarintLen64]byte
}

// NewWriter creates a trace Writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// pcMask truncates stored addresses to 60 bits (see the format comment).
const pcMask = uint64(1)<<60 - 1

// Branch implements Recorder. Addresses are recorded modulo 2^60.
func (w *Writer) Branch(pc uint64, taken bool) {
	if w.err != nil {
		return
	}
	pc &= pcMask
	delta := zigzag(int64(pc) - int64(w.lastPC))
	w.lastPC = pc
	v := delta << 1
	if taken {
		v |= 1
	}
	n := binary.PutUvarint(w.tmp[:], v+1)
	_, w.err = w.w.Write(w.tmp[:n])
}

// Ops implements Recorder.
func (w *Writer) Ops(n uint64) {
	if w.err != nil || n == 0 {
		return
	}
	k := binary.PutUvarint(w.tmp[:], 0)
	k += binary.PutUvarint(w.tmp[k:], n)
	_, w.err = w.w.Write(w.tmp[:k])
}

// Flush drains buffered output and reports any deferred write error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a trace file (any format version) and replays it into
// a Recorder. Version-3 files have every chunk frame's checksum verified
// before any of its records are surfaced.
type Reader struct {
	r       *bufio.Reader
	lastPC  uint64
	version int

	// version-3 state: the current verified frame payload and the read
	// cursor within it. The buffer is reused across frames.
	frame    []byte
	frameOff int
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	switch string(head) {
	case string(traceMagic):
		return &Reader{r: br, version: 1}, nil
	case string(traceMagic2):
		return &Reader{r: br, version: 2}, nil
	case string(traceMagic3):
		return &Reader{r: br, version: 3}, nil
	}
	return nil, ErrBadMagic
}

// Next returns the next record. Exactly one of the following holds:
// isBranch is true and (pc, taken) are valid; isBranch is false and ops is
// valid; or err is non-nil (io.EOF at a clean end of stream).
func (r *Reader) Next() (pc uint64, taken bool, ops uint64, isBranch bool, err error) {
	switch r.version {
	case 2:
		return r.next2()
	case 3:
		return r.next3()
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, false, 0, false, err
	}
	if v == 0 {
		n, err := binary.ReadUvarint(r.r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, false, 0, false, fmt.Errorf("trace: truncated ops record: %w", err)
		}
		return 0, false, n, false, nil
	}
	v--
	delta := unzigzag(v >> 1)
	r.lastPC = uint64(int64(r.lastPC)+delta) & pcMask
	return r.lastPC, v&1 == 1, 0, true, nil
}

// next2 decodes one version-2 (chunk) record.
func (r *Reader) next2() (pc uint64, taken bool, ops uint64, isBranch bool, err error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, false, 0, false, err
	}
	switch v {
	case chunkOps:
		n, err := binary.ReadUvarint(r.r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, false, 0, false, fmt.Errorf("trace: truncated ops record: %w", err)
		}
		return 0, false, n, false, nil
	case chunkAbs:
		pc, err := binary.ReadUvarint(r.r)
		if err == nil {
			var t uint64
			if t, err = binary.ReadUvarint(r.r); err == nil && t > 1 {
				err = fmt.Errorf("%w: absolute branch outcome %d", ErrMalformedChunk, t)
			} else if err == nil {
				r.lastPC = pc
				return pc, t == 1, 0, true, nil
			}
		}
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, false, 0, false, fmt.Errorf("trace: truncated branch record: %w", err)
	default:
		w := v - chunkDelta
		r.lastPC += uint64(unzigzag(w >> 1))
		return r.lastPC, w&1 == 1, 0, true, nil
	}
}

// next3 decodes one record of a version-3 (framed chunk) file, loading and
// verifying the next frame when the current one is exhausted. A frame's
// records are surfaced only after its checksum passes, so a corrupt chunk
// yields an error wrapping ErrCorrupt and zero of its events.
func (r *Reader) next3() (pc uint64, taken bool, ops uint64, isBranch bool, err error) {
	for r.frameOff >= len(r.frame) {
		if err := r.loadFrame(); err != nil {
			return 0, false, 0, false, err
		}
	}
	data := r.frame[r.frameOff:]
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, false, 0, false, fmt.Errorf("%w: record header", ErrMalformedChunk)
	}
	r.frameOff += n
	data = data[n:]
	switch v {
	case chunkOps:
		c, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false, 0, false, fmt.Errorf("%w: ops count", ErrMalformedChunk)
		}
		r.frameOff += n
		return 0, false, c, false, nil
	case chunkAbs:
		pc, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false, 0, false, fmt.Errorf("%w: absolute branch pc", ErrMalformedChunk)
		}
		r.frameOff += n
		t, k := binary.Uvarint(data[n:])
		if k <= 0 || t > 1 {
			return 0, false, 0, false, fmt.Errorf("%w: absolute branch outcome", ErrMalformedChunk)
		}
		r.frameOff += k
		r.lastPC = pc
		return pc, t == 1, 0, true, nil
	default:
		w := v - chunkDelta
		r.lastPC += uint64(unzigzag(w >> 1))
		return r.lastPC, w&1 == 1, 0, true, nil
	}
}

// loadFrame reads and verifies the next version-3 frame into r.frame. A
// clean end of stream returns io.EOF; a frame torn by a crash mid-append or
// failing its checksum returns an error wrapping ErrCorrupt. Empty frames
// are legal and skipped by the caller's loop.
func (r *Reader) loadFrame() error {
	n, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return io.EOF // clean end between frames
	}
	if err != nil {
		return fmt.Errorf("%w: frame length: %v", ErrCorrupt, err)
	}
	if n > maxFramePayload {
		return fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, n)
	}
	var crcBuf [frameCRCLen]byte
	if _, err := io.ReadFull(r.r, crcBuf[:]); err != nil {
		return fmt.Errorf("%w: truncated frame checksum: %v", ErrCorrupt, err)
	}
	if cap(r.frame) < int(n) {
		r.frame = make([]byte, n)
	}
	r.frame = r.frame[:n]
	if _, err := io.ReadFull(r.r, r.frame); err != nil {
		return fmt.Errorf("%w: truncated frame payload: %v", ErrCorrupt, err)
	}
	if err := Verify(r.frame, binary.LittleEndian.Uint32(crcBuf[:])); err != nil {
		return err
	}
	r.frameOff = 0
	return nil
}

// Replay streams the whole remaining trace into rec. It returns the totals
// observed. A Stop panic raised by rec (cooperative cancellation, e.g. a
// sim.Runner built WithContext) is recovered and returned as its error.
func (r *Reader) Replay(rec Recorder) (c Counts, err error) {
	defer func() {
		if rv := recover(); rv != nil {
			if stopErr, ok := AsStop(rv); ok {
				err = stopErr
				return
			}
			panic(rv)
		}
	}()
	tee := Tee(&c, rec)
	for {
		pc, taken, ops, isBranch, err := r.Next()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return c, err
		}
		if isBranch {
			tee.Branch(pc, taken)
		} else {
			tee.Ops(ops)
		}
	}
}
