package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format (version 1).
//
// The file starts with the 6-byte magic "BTRC1\n" followed by a stream of
// unsigned varints:
//
//	0              — an Ops record; the next uvarint is the instruction count
//	v > 0          — a branch record encoding (delta<<1 | taken) + 1, where
//	                 delta is the PC's zig-zag delta from the previous branch PC
//
// Delta encoding keeps files small because branch addresses are clustered:
// the hot loops of a workload revisit nearby PCs.
//
// Branch addresses are stored modulo 2^60 so that the zig-zag delta, the
// taken bit and the ops/branch discriminator all fit one 64-bit varint
// without overflow. Real address spaces are far below 60 bits.
//
// Version 2 ("BTRC2\n") carries the chunk records documented in chunk.go:
// self-contained chunks whose first branch is absolute, lossless over the
// full 64-bit address space. The replay engine's spilled and exported
// traces use it. Reader understands both versions; Writer still emits
// version 1, whose single-varint records are smaller for the address
// ranges real workloads produce.

var traceMagic = []byte("BTRC1\n")

var traceMagic2 = []byte("BTRC2\n")

// ChunkFileHeader returns the header bytes of a version-2 (chunk-encoded)
// trace file. A valid file is this header followed by any concatenation of
// ChunkWriter chunks; NewReader decodes it like any other trace.
func ChunkFileHeader() []byte { return append([]byte(nil), traceMagic2...) }

// ErrBadMagic is returned by NewReader when the input is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic, not a branch trace file")

// Writer encodes a branch event stream to an io.Writer. It implements
// Recorder; Close (or Flush) must be called to drain the internal buffer.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	err    error
	tmp    [2 * binary.MaxVarintLen64]byte
}

// NewWriter creates a trace Writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// pcMask truncates stored addresses to 60 bits (see the format comment).
const pcMask = uint64(1)<<60 - 1

// Branch implements Recorder. Addresses are recorded modulo 2^60.
func (w *Writer) Branch(pc uint64, taken bool) {
	if w.err != nil {
		return
	}
	pc &= pcMask
	delta := zigzag(int64(pc) - int64(w.lastPC))
	w.lastPC = pc
	v := delta << 1
	if taken {
		v |= 1
	}
	n := binary.PutUvarint(w.tmp[:], v+1)
	_, w.err = w.w.Write(w.tmp[:n])
}

// Ops implements Recorder.
func (w *Writer) Ops(n uint64) {
	if w.err != nil || n == 0 {
		return
	}
	k := binary.PutUvarint(w.tmp[:], 0)
	k += binary.PutUvarint(w.tmp[k:], n)
	_, w.err = w.w.Write(w.tmp[:k])
}

// Flush drains buffered output and reports any deferred write error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a trace file (either format version) and replays it into
// a Recorder.
type Reader struct {
	r       *bufio.Reader
	lastPC  uint64
	version int
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	switch string(head) {
	case string(traceMagic):
		return &Reader{r: br, version: 1}, nil
	case string(traceMagic2):
		return &Reader{r: br, version: 2}, nil
	}
	return nil, ErrBadMagic
}

// Next returns the next record. Exactly one of the following holds:
// isBranch is true and (pc, taken) are valid; isBranch is false and ops is
// valid; or err is non-nil (io.EOF at a clean end of stream).
func (r *Reader) Next() (pc uint64, taken bool, ops uint64, isBranch bool, err error) {
	if r.version == 2 {
		return r.next2()
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, false, 0, false, err
	}
	if v == 0 {
		n, err := binary.ReadUvarint(r.r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, false, 0, false, fmt.Errorf("trace: truncated ops record: %w", err)
		}
		return 0, false, n, false, nil
	}
	v--
	delta := unzigzag(v >> 1)
	r.lastPC = uint64(int64(r.lastPC)+delta) & pcMask
	return r.lastPC, v&1 == 1, 0, true, nil
}

// next2 decodes one version-2 (chunk) record.
func (r *Reader) next2() (pc uint64, taken bool, ops uint64, isBranch bool, err error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, false, 0, false, err
	}
	switch v {
	case chunkOps:
		n, err := binary.ReadUvarint(r.r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, false, 0, false, fmt.Errorf("trace: truncated ops record: %w", err)
		}
		return 0, false, n, false, nil
	case chunkAbs:
		pc, err := binary.ReadUvarint(r.r)
		if err == nil {
			var t uint64
			if t, err = binary.ReadUvarint(r.r); err == nil && t > 1 {
				err = fmt.Errorf("%w: absolute branch outcome %d", ErrMalformedChunk, t)
			} else if err == nil {
				r.lastPC = pc
				return pc, t == 1, 0, true, nil
			}
		}
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, false, 0, false, fmt.Errorf("trace: truncated branch record: %w", err)
	default:
		w := v - chunkDelta
		r.lastPC += uint64(unzigzag(w >> 1))
		return r.lastPC, w&1 == 1, 0, true, nil
	}
}

// Replay streams the whole remaining trace into rec. It returns the totals
// observed. A Stop panic raised by rec (cooperative cancellation, e.g. a
// sim.Runner built WithContext) is recovered and returned as its error.
func (r *Reader) Replay(rec Recorder) (c Counts, err error) {
	defer func() {
		if rv := recover(); rv != nil {
			if stopErr, ok := AsStop(rv); ok {
				err = stopErr
				return
			}
			panic(rv)
		}
	}()
	tee := Tee(&c, rec)
	for {
		pc, taken, ops, isBranch, err := r.Next()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return c, err
		}
		if isBranch {
			tee.Branch(pc, taken)
		} else {
			tee.Ops(ops)
		}
	}
}
