package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format (version 1).
//
// The file starts with the 6-byte magic "BTRC1\n" followed by a stream of
// unsigned varints:
//
//	0              — an Ops record; the next uvarint is the instruction count
//	v > 0          — a branch record encoding (delta<<1 | taken) + 1, where
//	                 delta is the PC's zig-zag delta from the previous branch PC
//
// Delta encoding keeps files small because branch addresses are clustered:
// the hot loops of a workload revisit nearby PCs.
//
// Branch addresses are stored modulo 2^60 so that the zig-zag delta, the
// taken bit and the ops/branch discriminator all fit one 64-bit varint
// without overflow. Real address spaces are far below 60 bits.

var traceMagic = []byte("BTRC1\n")

// ErrBadMagic is returned by NewReader when the input is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic, not a branch trace file")

// Writer encodes a branch event stream to an io.Writer. It implements
// Recorder; Close (or Flush) must be called to drain the internal buffer.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	err    error
	tmp    [2 * binary.MaxVarintLen64]byte
}

// NewWriter creates a trace Writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// pcMask truncates stored addresses to 60 bits (see the format comment).
const pcMask = uint64(1)<<60 - 1

// Branch implements Recorder. Addresses are recorded modulo 2^60.
func (w *Writer) Branch(pc uint64, taken bool) {
	if w.err != nil {
		return
	}
	pc &= pcMask
	delta := zigzag(int64(pc) - int64(w.lastPC))
	w.lastPC = pc
	v := delta << 1
	if taken {
		v |= 1
	}
	n := binary.PutUvarint(w.tmp[:], v+1)
	_, w.err = w.w.Write(w.tmp[:n])
}

// Ops implements Recorder.
func (w *Writer) Ops(n uint64) {
	if w.err != nil || n == 0 {
		return
	}
	k := binary.PutUvarint(w.tmp[:], 0)
	k += binary.PutUvarint(w.tmp[k:], n)
	_, w.err = w.w.Write(w.tmp[:k])
}

// Flush drains buffered output and reports any deferred write error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a trace file and replays it into a Recorder.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != string(traceMagic) {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next returns the next record. Exactly one of the following holds:
// isBranch is true and (pc, taken) are valid; isBranch is false and ops is
// valid; or err is non-nil (io.EOF at a clean end of stream).
func (r *Reader) Next() (pc uint64, taken bool, ops uint64, isBranch bool, err error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, false, 0, false, err
	}
	if v == 0 {
		n, err := binary.ReadUvarint(r.r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, false, 0, false, fmt.Errorf("trace: truncated ops record: %w", err)
		}
		return 0, false, n, false, nil
	}
	v--
	delta := unzigzag(v >> 1)
	r.lastPC = uint64(int64(r.lastPC)+delta) & pcMask
	return r.lastPC, v&1 == 1, 0, true, nil
}

// Replay streams the whole remaining trace into rec. It returns the totals
// observed. A Stop panic raised by rec (cooperative cancellation, e.g. a
// sim.Runner built WithContext) is recovered and returned as its error.
func (r *Reader) Replay(rec Recorder) (c Counts, err error) {
	defer func() {
		if rv := recover(); rv != nil {
			if stopErr, ok := AsStop(rv); ok {
				err = stopErr
				return
			}
			panic(rv)
		}
	}()
	tee := Tee(&c, rec)
	for {
		pc, taken, ops, isBranch, err := r.Next()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return c, err
		}
		if isBranch {
			tee.Branch(pc, taken)
		} else {
			tee.Ops(ops)
		}
	}
}
