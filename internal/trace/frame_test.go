package trace

import (
	"bytes"
	"errors"
	"testing"
)

// testChunk encodes a small branch stream and returns the raw chunk.
func testChunk(t *testing.T) []byte {
	t.Helper()
	var w ChunkWriter
	w.Branch(0x1_2000_0000, true)
	w.Ops(12)
	w.Branch(0x1_2000_0010, false)
	w.Branch(0x1_2000_0004, true)
	c := w.Cut()
	if c == nil {
		t.Fatal("empty chunk")
	}
	return c
}

func TestFrameRoundTrip(t *testing.T) {
	payload := testChunk(t)
	frame := AppendFrame(nil, payload)
	got, rest, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %x, want %x", got, payload)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes, want 0", len(rest))
	}
	// Two concatenated frames decode in sequence.
	two := AppendFrame(AppendFrame(nil, payload), payload)
	first, rest, err := DecodeFrame(two)
	if err != nil || !bytes.Equal(first, payload) {
		t.Fatalf("first frame: %v", err)
	}
	second, rest, err := DecodeFrame(rest)
	if err != nil || !bytes.Equal(second, payload) || len(rest) != 0 {
		t.Fatalf("second frame: %v (rest %d)", err, len(rest))
	}
}

func TestFrameDetectsEverySingleBitFlip(t *testing.T) {
	payload := testChunk(t)
	frame := AppendFrame(nil, payload)
	var rec Counts
	if err := DecodeFramedChunk(frame, &rec); err != nil {
		t.Fatalf("pristine frame: %v", err)
	}
	for bit := 0; bit < len(frame)*8; bit++ {
		mutated := append([]byte(nil), frame...)
		mutated[bit/8] ^= 1 << (bit % 8)
		var rec Counts
		err := DecodeFramedChunk(mutated, &rec)
		if err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", bit, err)
		}
	}
}

func TestFrameTornTail(t *testing.T) {
	payload := testChunk(t)
	frame := AppendFrame(nil, payload)
	for cut := 1; cut < len(frame); cut++ {
		var rec Counts
		err := DecodeFramedChunk(frame[:cut], &rec)
		if err == nil {
			t.Fatalf("torn frame of %d/%d bytes accepted", cut, len(frame))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("torn frame of %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestVerify(t *testing.T) {
	payload := testChunk(t)
	if err := Verify(payload, Checksum(payload)); err != nil {
		t.Fatal(err)
	}
	if err := Verify(payload, Checksum(payload)+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad crc: err = %v, want ErrCorrupt", err)
	}
}

// TestMalformedChunkIsCorrupt pins the sentinel relationship: structural
// chunk corruption matches ErrCorrupt too, so quarantine policies need one
// errors.Is check.
func TestMalformedChunkIsCorrupt(t *testing.T) {
	if !errors.Is(ErrMalformedChunk, ErrCorrupt) {
		t.Fatal("ErrMalformedChunk does not wrap ErrCorrupt")
	}
	err := DecodeChunk([]byte{0x80}, Discard)
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, ErrMalformedChunk) {
		t.Fatalf("structural error %v does not match both sentinels", err)
	}
}

// TestFramedFileReader proves the version-3 file framing: a FramedFileHeader
// followed by concatenated frames replays identically to the raw stream,
// and a flipped bit anywhere in a frame surfaces as ErrCorrupt with zero
// events delivered from the corrupt chunk.
func TestFramedFileReader(t *testing.T) {
	var w ChunkWriter
	var want eventLog
	rec := Tee(&want, &w)
	rec.Branch(0x8000, true)
	rec.Ops(12)
	rec.Branch(0x8004, false)
	first := w.Cut()
	rec.Ops(3)
	rec.Branch(1<<62, true)
	second := w.Cut()

	file := FramedFileHeader()
	file = AppendFrame(file, first)
	file = AppendFrame(file, second)

	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	var got eventLog
	if _, err := r.Replay(&got); err != nil {
		t.Fatal(err)
	}
	wantBr, gotBr := want.branches(), got.branches()
	if len(wantBr) != len(gotBr) {
		t.Fatalf("branch count: got %d, want %d", len(gotBr), len(wantBr))
	}
	for i := range wantBr {
		if wantBr[i] != gotBr[i] {
			t.Errorf("branch %d: got %+v, want %+v", i, gotBr[i], wantBr[i])
		}
	}
	if got.totals() != want.totals() {
		t.Errorf("totals: got %+v, want %+v", got.totals(), want.totals())
	}

	// Corrupt one payload byte of the second frame: the first chunk's
	// events replay, then the reader reports corruption.
	headerLen := len(FramedFileHeader())
	firstFrame := AppendFrame(nil, first)
	mutated := append([]byte(nil), file...)
	mutated[headerLen+len(firstFrame)+FrameOverhead(len(second))] ^= 0x01
	r, err = NewReader(bytes.NewReader(mutated))
	if err != nil {
		t.Fatal(err)
	}
	var partial eventLog
	_, err = r.Replay(&partial)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: err = %v, want ErrCorrupt", err)
	}
	if len(partial.branches()) != 2 {
		t.Fatalf("corrupt second chunk leaked events: got %d branches, want the first chunk's 2", len(partial.branches()))
	}

	// Torn tail: truncating the file mid-frame is corruption, not EOF.
	r, err = NewReader(bytes.NewReader(file[:len(file)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay(Discard); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn file: err = %v, want ErrCorrupt", err)
	}
}
