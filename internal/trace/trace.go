// Package trace defines the dynamic branch event model shared by workloads,
// predictors and the simulator.
//
// A run of a workload produces an ordered stream of two kinds of records:
//
//   - conditional branch events, each carrying the branch's address (PC) and
//     its resolved direction, and
//   - straight-line instruction counts, charged between branches.
//
// This mirrors what the paper observed through Atom instrumentation of Alpha
// binaries: the predictors only ever see (PC, taken) pairs, and MISPs/KI
// needs a total instruction count as denominator. Everything downstream —
// profiling, hint selection, prediction — consumes this stream through the
// Recorder interface.
package trace

// Event is a single dynamic conditional branch.
type Event struct {
	// PC is the address of the branch instruction. Workloads assign
	// word-aligned addresses clustered per function, like a real text
	// segment, because predictor indexing hashes PC bits.
	PC uint64
	// Taken reports the resolved direction.
	Taken bool
}

// Recorder receives the dynamic stream of a run. Implementations include the
// simulator's run loop, profile collectors, trace file writers and in-memory
// buffers.
//
// Branch must be called once per dynamic conditional branch, in program
// order. Ops charges n non-branch instructions; callers may invoke it with
// any granularity. Each Branch call itself accounts for exactly one
// instruction (the branch), so implementations must not double-count it.
type Recorder interface {
	Branch(pc uint64, taken bool)
	Ops(n uint64)
}

// Counts accumulates the instruction and branch totals of a stream. It is
// embedded by most Recorder implementations.
type Counts struct {
	Instructions uint64 // total dynamic instructions, branches included
	Branches     uint64 // dynamic conditional branches
	TakenCount   uint64 // how many of those were taken
}

// Branch implements Recorder.
func (c *Counts) Branch(_ uint64, taken bool) {
	c.Instructions++
	c.Branches++
	if taken {
		c.TakenCount++
	}
}

// Ops implements Recorder.
func (c *Counts) Ops(n uint64) { c.Instructions += n }

// CBRsPerKI returns dynamic conditional branches per thousand instructions,
// the branch-density metric of the paper's Table 1.
func (c *Counts) CBRsPerKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.Branches) / float64(c.Instructions)
}

// Buffer is a Recorder that stores the full event stream in memory, for
// tests and for replaying the same stream through several predictors.
type Buffer struct {
	Counts
	Events []Event
}

// Branch implements Recorder.
func (b *Buffer) Branch(pc uint64, taken bool) {
	b.Counts.Branch(pc, taken)
	b.Events = append(b.Events, Event{PC: pc, Taken: taken})
}

// Tee duplicates a stream to several recorders in order.
func Tee(rs ...Recorder) Recorder { return teeRecorder(rs) }

type teeRecorder []Recorder

func (t teeRecorder) Branch(pc uint64, taken bool) {
	for _, r := range t {
		r.Branch(pc, taken)
	}
}

func (t teeRecorder) Ops(n uint64) {
	for _, r := range t {
		r.Ops(n)
	}
}

// Discard is a Recorder that drops everything. Useful for benchmarking the
// raw cost of a workload.
var Discard Recorder = discard{}

type discard struct{}

func (discard) Branch(uint64, bool) {}
func (discard) Ops(uint64)          {}
