package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReaderRobustness feeds arbitrary bytes to the trace reader: it must
// either reject them or terminate cleanly, never panic or loop.
func FuzzReaderRobustness(f *testing.F) {
	// seed with a valid trace
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Branch(0x1200_0000, true)
	w.Ops(12)
	w.Branch(0x1200_0010, false)
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("BTRC1\n"))
	f.Add([]byte("BTRC1\n\x00"))
	f.Add([]byte("garbage"))
	// version-2 (chunk-encoded) headers, valid and truncated
	var cw ChunkWriter
	cw.Branch(0x1200_0000, true)
	cw.Ops(3)
	f.Add(append(ChunkFileHeader(), cw.Cut()...))
	f.Add([]byte("BTRC2\n"))
	f.Add([]byte("BTRC2\n\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// bound the number of records to keep the fuzzer fast
		for i := 0; i < 1_000_000; i++ {
			_, _, _, _, err := r.Next()
			if err == io.EOF || err != nil {
				return
			}
		}
	})
}

// FuzzRoundTrip checks write→read identity over arbitrary event streams.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1200_0000), true, uint64(3))
	f.Add(uint64(0), false, uint64(0))
	f.Add(uint64(1)<<59, true, uint64(1)<<40)

	f.Fuzz(func(t *testing.T, pc uint64, taken bool, ops uint64) {
		pc &= pcMask
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		w.Branch(pc, taken)
		w.Ops(ops)
		w.Branch(pc+4, !taken)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var got Buffer
		counts, err := r.Replay(&got)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Events) != 2 || got.Events[0].PC != pc || got.Events[0].Taken != taken {
			t.Fatalf("event 0 = %+v, want pc %#x taken %v", got.Events, pc, taken)
		}
		if got.Events[1].PC != (pc+4)&pcMask || got.Events[1].Taken == taken {
			t.Fatalf("event 1 = %+v", got.Events[1])
		}
		if counts.Instructions != 2+ops {
			t.Fatalf("instructions = %d, want %d", counts.Instructions, 2+ops)
		}
	})
}
