// Package serve is the sharded multi-tenant sweep service behind bpserve: a
// long-running daemon that accepts sweep jobs over the versioned HTTP job
// API (branchsim/serveapi), expands each job into (workload × input ×
// predictor × scheme) arms, and shards the arms across a bounded worker
// pool backed by one shared experiment.Harness.
//
// The harness is the sharing boundary: identical arms are deduplicated
// *across jobs and tenants* by the harness's singleflight and checkpoint
// sha256 keys, and the capture-once replay engine's (workload, input)
// traces are shared between tenants — two concurrent jobs touching the same
// workload trigger exactly one instrumented execution. Attaching the daemon
// never changes results: arm metrics and journal bytes are identical to an
// offline run of the same arms.
//
// Admission control is load shedding, not queueing: a tenant over its
// in-flight job quota, a job over the arm quota, or a draining daemon gets
// a typed *serveapi.Error immediately instead of waiting unboundedly.
//
// Job lifecycle flows through the obs event bus as live-only JobRecords, so
// /metrics (the serve.* series), /events and the embedded dashboard show
// cross-job progress without perturbing the journal.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"branchsim/internal/core"
	"branchsim/internal/experiment"
	"branchsim/internal/obs"
	"branchsim/internal/sim"
	"branchsim/internal/workload"
	"branchsim/serveapi"
)

// Defaults for Config's zero fields.
const (
	// DefaultMaxTenantJobs bounds one tenant's in-flight jobs.
	DefaultMaxTenantJobs = 4
	// DefaultMaxArmsPerJob bounds one job's expanded grid.
	DefaultMaxArmsPerJob = 1024
)

// Config assembles a Server. Harness is the one required field: the caller
// builds it (replay engine, checkpoint, observer, telemetry) and keeps
// ownership — the server only schedules work onto it.
type Config struct {
	// Harness runs the arms; its caches are what make the daemon
	// multi-tenant-efficient. Required.
	Harness *experiment.Harness
	// Obs receives job lifecycle records (live bus) and the serve.* metric
	// series. Nil disables observation; results are unchanged.
	Obs *obs.Observer
	// Workers bounds concurrently executing arms across all jobs
	// (<= 0: GOMAXPROCS).
	Workers int
	// MaxTenantJobs bounds one tenant's in-flight jobs
	// (<= 0: DefaultMaxTenantJobs).
	MaxTenantJobs int
	// MaxArmsPerJob bounds one job's expanded grid
	// (<= 0: DefaultMaxArmsPerJob).
	MaxArmsPerJob int
	// Lookup resolves workload names at admission (nil: workload.Get).
	// Tests substitute gate programs here; the harness has its own hook for
	// execution.
	Lookup func(name string) (workload.Program, error)
}

// Server is the daemon's core: a job registry over a shared harness.
// Safe for concurrent use.
type Server struct {
	harness       *experiment.Harness
	obs           *obs.Observer
	sem           chan struct{}
	maxTenantJobs int
	maxArmsPerJob int
	lookup        func(name string) (workload.Program, error)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	inflight map[string]int // tenant → jobs not yet terminal
	tenants  map[string]*tenantStats
	nextID   uint64
	draining bool

	closeOnce sync.Once
}

// job is one admitted sweep job. Its mutable state is guarded by mu; the
// arms slice itself is fixed at admission (only element fields change).
type job struct {
	mu sync.Mutex

	id, tenant, name string
	state            string
	arms             []serveapi.ArmResult
	done, failed     int
	cancelled        int // arms that never settled because the job was cancelled
	firstErr         string

	cancel context.CancelFunc
	doneCh chan struct{}

	// created is the admission instant (job latency measures from here);
	// span is the job's trace span and traceID its trace, when the
	// observer traces.
	created time.Time
	span    *obs.TraceSpan
	traceID string
}

// tenantStats is one tenant's attribution ledger, guarded by Server.mu. It
// backs the /api/v1/tenants summary; the per-tenant serve.tenant.* metric
// families mirror it at /metrics.
type tenantStats struct {
	jobs, jobsDone, jobsFailed, jobsCancelled uint64
	shed                                      uint64
	armsRun, armsFailed, armsSaved            uint64
	branches                                  uint64
	latCount                                  uint64
	latTotal, latMax                          time.Duration
}

// New builds a Server over cfg. Call Drain (or Close) before discarding it.
func New(cfg Config) (*Server, error) {
	if cfg.Harness == nil {
		return nil, fmt.Errorf("serve: Config.Harness is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxJobs := cfg.MaxTenantJobs
	if maxJobs <= 0 {
		maxJobs = DefaultMaxTenantJobs
	}
	maxArms := cfg.MaxArmsPerJob
	if maxArms <= 0 {
		maxArms = DefaultMaxArmsPerJob
	}
	lookup := cfg.Lookup
	if lookup == nil {
		lookup = workload.Get
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		harness:       cfg.Harness,
		obs:           cfg.Obs,
		sem:           make(chan struct{}, workers),
		maxTenantJobs: maxJobs,
		maxArmsPerJob: maxArms,
		lookup:        lookup,
		ctx:           ctx,
		cancel:        cancel,
		jobs:          map[string]*job{},
		inflight:      map[string]int{},
		tenants:       map[string]*tenantStats{},
	}, nil
}

// Submit validates, admits and starts one job, returning its
// acknowledgement. Failures are typed *serveapi.Error values: validation
// failures name the offending token (CodeBadSpec), admission failures say
// which quota was exhausted (CodeQuotaJobs, CodeQuotaArms) or that the
// daemon is draining (CodeDraining). Submit never queues: an admitted job
// is running, a refused job is the client's to resubmit elsewhere. ctx is
// the submission's request scope: when it carries a trace span (the HTTP
// handler opens one per request), the job's span becomes its child and the
// acknowledgement carries the trace ID.
func (s *Server) Submit(ctx context.Context, spec *serveapi.JobSpec) (*serveapi.Submitted, error) {
	if err := spec.Normalize(); err != nil {
		return nil, serveapi.Errorf(serveapi.CodeBadSpec, "%v", err)
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	// Validate the non-predictor grid dimensions up front, so a bad
	// workload name is a submission error, not N failed arms.
	for _, wl := range spec.Workloads {
		if _, err := s.lookup(wl); err != nil {
			return nil, serveapi.Errorf(serveapi.CodeBadSpec, "%v", err)
		}
	}
	for _, in := range spec.Inputs {
		if !validInput(in) {
			return nil, serveapi.Errorf(serveapi.CodeBadSpec,
				"unknown input %q (accepted: %v)", in, workload.Inputs())
		}
	}
	for _, sch := range spec.Schemes {
		if sch == "none" {
			continue
		}
		if _, err := core.SelectorByName(sch); err != nil {
			return nil, serveapi.Errorf(serveapi.CodeBadSpec, "%v", err)
		}
	}
	arms := spec.Arms()
	if len(arms) > s.maxArmsPerJob {
		s.shed(tenant)
		return nil, serveapi.Errorf(serveapi.CodeQuotaArms,
			"job expands to %d arms, quota is %d per job; split the grid", len(arms), s.maxArmsPerJob)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.shed(tenant)
		return nil, serveapi.Errorf(serveapi.CodeDraining, "daemon is draining; resubmit to its replacement")
	}
	if s.inflight[tenant] >= s.maxTenantJobs {
		n := s.inflight[tenant]
		s.mu.Unlock()
		s.shed(tenant)
		return nil, serveapi.Errorf(serveapi.CodeQuotaJobs,
			"tenant %q has %d jobs in flight, quota is %d; wait for one to finish", tenant, n, s.maxTenantJobs)
	}
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("j%06d", s.nextID),
		tenant:  tenant,
		name:    spec.Name,
		state:   serveapi.StateQueued,
		arms:    make([]serveapi.ArmResult, len(arms)),
		doneCh:  make(chan struct{}),
		created: time.Now(),
	}
	for i, a := range arms {
		j.arms[i] = serveapi.ArmResult{Arm: a, State: serveapi.ArmPending}
	}
	jctx, jcancel := context.WithCancel(s.ctx)
	j.cancel = jcancel
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.inflight[tenant]++
	s.tenantLocked(tenant).jobs++
	s.wg.Add(1)
	s.mu.Unlock()

	// The job's span is a child of the submission request's span: the job
	// context descends from the server context (so jobs outlive their
	// submission connection) but carries the request's trace lineage.
	if sc, ok := obs.SpanFromContext(ctx); ok {
		jctx = obs.ContextWithSpan(jctx, sc)
	}
	j.span, jctx = s.obs.StartSpan(jctx, "job")
	j.span.SetTenant(tenant)
	j.span.SetJob(j.id)
	j.traceID = j.span.Context().TraceID

	s.obs.Counter(obs.MServeJobsSubmitted).Add(1)
	s.obs.TenantCounter(obs.MTenantJobs, tenant).Add(1)
	s.obs.Gauge(obs.MServeJobsRunning).Add(1)
	s.obs.Gauge(obs.MServeArmsPending).Add(int64(len(arms)))
	s.publish(j)
	go s.runJob(jctx, j)

	ack := &serveapi.Submitted{ID: j.id, Arms: len(arms), TraceID: j.traceID}
	ack.Stamp()
	return ack, nil
}

// shed records one load-shedding rejection, globally and per tenant.
func (s *Server) shed(tenant string) {
	s.obs.Counter(obs.MServeJobsRejected).Add(1)
	s.obs.TenantCounter(obs.MTenantShed, tenant).Add(1)
	s.mu.Lock()
	s.tenantLocked(tenant).shed++
	s.mu.Unlock()
}

// tenantLocked returns tenant's stats ledger, creating it on first use.
// Caller holds s.mu.
func (s *Server) tenantLocked(tenant string) *tenantStats {
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantStats{}
		s.tenants[tenant] = ts
	}
	return ts
}

// validInput accepts the standard workload input names.
func validInput(in string) bool {
	for _, k := range workload.Inputs() {
		if in == k {
			return true
		}
	}
	return false
}

// runJob shards one job's arms across the server-wide worker pool and
// settles the job's terminal state.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer s.wg.Done()
	j.mu.Lock()
	j.state = serveapi.StateRunning
	j.mu.Unlock()
	s.publish(j)

	queueWait := s.obs.Histogram(obs.MServeQueueWait)
	var arms sync.WaitGroup
	for i := range j.arms {
		// Respect cancellation while waiting for a pool slot: a cancelled
		// job's pending arms never run at all.
		queued := time.Now()
		select {
		case <-ctx.Done():
		case s.sem <- struct{}{}:
			wait := time.Since(queued)
			queueWait.Observe(wait)
			arms.Add(1)
			go func(i int) {
				defer func() { <-s.sem; arms.Done() }()
				s.runArm(ctx, j, i, wait)
			}(i)
			continue
		}
		s.settleArm(j, i, sim.Metrics{}, "", ctx.Err())
	}
	arms.Wait()

	j.mu.Lock()
	switch {
	case j.cancelled > 0:
		j.state = serveapi.StateCancelled
	case j.failed > 0:
		j.state = serveapi.StateFailed
	default:
		j.state = serveapi.StateDone
	}
	state := j.state
	j.mu.Unlock()

	switch state {
	case serveapi.StateDone:
		s.obs.Counter(obs.MServeJobsDone).Add(1)
	case serveapi.StateFailed:
		s.obs.Counter(obs.MServeJobsFailed).Add(1)
	default:
		s.obs.Counter(obs.MServeJobsCancelled).Add(1)
	}
	s.obs.Gauge(obs.MServeJobsRunning).Add(-1)

	lat := time.Since(j.created)
	s.obs.Histogram(obs.MServeJobLatency).Observe(lat)
	s.obs.TenantHistogram(obs.MTenantJobLatency, j.tenant).Observe(lat)
	s.mu.Lock()
	s.inflight[j.tenant]--
	ts := s.tenantLocked(j.tenant)
	switch state {
	case serveapi.StateDone:
		ts.jobsDone++
	case serveapi.StateFailed:
		ts.jobsFailed++
	default:
		ts.jobsCancelled++
	}
	ts.latCount++
	ts.latTotal += lat
	if lat > ts.latMax {
		ts.latMax = lat
	}
	s.mu.Unlock()

	var jerr error
	if state == serveapi.StateFailed {
		j.mu.Lock()
		jerr = errors.New(j.firstErr)
		j.mu.Unlock()
	}
	j.span.End(jerr)
	s.publish(j)
	close(j.doneCh)
}

// runArm executes one arm on the shared harness and settles its result.
// queued is how long the arm waited for a pool slot; the arm's span records
// it as a queue_wait phase so a trace waterfall shows contention, not just
// compute.
func (s *Server) runArm(ctx context.Context, j *job, i int, queued time.Duration) {
	a := j.arms[i].Arm
	j.mu.Lock()
	j.arms[i].State = serveapi.ArmRunning
	j.mu.Unlock()
	aspan, actx := s.obs.StartSpan(ctx, "arm")
	aspan.SetTenant(j.tenant)
	aspan.SetJob(j.id)
	aspan.SetKey(a.Key())
	if queued > 0 {
		aspan.AddPhase(obs.PhaseQueue, time.Now().Add(-queued), queued)
	}
	m, src, err := s.harness.RunAttributed(actx, experiment.Arm{
		Workload: a.Workload,
		Input:    a.Input,
		Pred:     a.Predictor,
		Scheme:   a.Scheme,
	})
	aspan.SetSource(src)
	aspan.End(err)
	s.settleArm(j, i, m, src, err)
}

// settleArm records one arm's outcome and publishes the job's progress. A
// cancellation is not a failure: the arm goes back to pending — it produced
// no result and a resubmitted job will run it (or recall it from the
// checkpoint, if it finished on a previous daemon).
func (s *Server) settleArm(j *job, i int, m sim.Metrics, src string, err error) {
	j.mu.Lock()
	switch {
	case errors.Is(err, context.Canceled):
		j.arms[i].State = serveapi.ArmPending
		j.cancelled++
	case err != nil:
		j.arms[i].State = serveapi.ArmFailed
		j.arms[i].Error = err.Error()
		j.failed++
		if j.firstErr == "" {
			j.firstErr = fmt.Sprintf("%s: %v", j.arms[i].Key(), err)
		}
	default:
		wm := wireMetrics(m)
		j.arms[i].State = serveapi.ArmDone
		j.arms[i].Metrics = &wm
		j.done++
	}
	j.mu.Unlock()
	switch {
	case errors.Is(err, context.Canceled):
	case err != nil:
		s.obs.Counter(obs.MServeArmsFailed).Add(1)
		s.obs.TenantCounter(obs.MTenantArmsRun, j.tenant).Add(1)
		s.mu.Lock()
		ts := s.tenantLocked(j.tenant)
		ts.armsRun++
		ts.armsFailed++
		s.mu.Unlock()
	default:
		s.obs.Counter(obs.MServeArmsDone).Add(1)
		s.obs.TenantCounter(obs.MTenantArmsRun, j.tenant).Add(1)
		s.obs.TenantCounter(obs.MTenantBranches, j.tenant).Add(m.Branches)
		saved := src == obs.SourceCheckpoint || src == obs.SourceSingleflight
		if saved {
			s.obs.TenantCounter(obs.MTenantArmsSaved, j.tenant).Add(1)
		}
		s.mu.Lock()
		ts := s.tenantLocked(j.tenant)
		ts.armsRun++
		ts.branches += m.Branches
		if saved {
			ts.armsSaved++
		}
		s.mu.Unlock()
	}
	s.obs.Gauge(obs.MServeArmsPending).Add(-1)
	s.publish(j)
}

// wireMetrics converts simulator metrics to their wire form, field for
// field — the daemon's results must be bit-identical to offline runs.
func wireMetrics(m sim.Metrics) serveapi.Metrics {
	return serveapi.Metrics{
		Instructions:      m.Instructions,
		Branches:          m.Branches,
		Taken:             m.TakenCount,
		Mispredicts:       m.Mispredicts,
		CollisionsTracked: m.CollisionsTracked,
		Collisions:        m.Collisions.Total,
		Constructive:      m.Collisions.Constructive,
		Destructive:       m.Collisions.Destructive,
	}
}

// publish mirrors one job snapshot to the live event bus. Live-only: job
// records never touch the journal, so daemon journals stay byte-identical
// to offline runs.
func (s *Server) publish(j *job) {
	if s.obs == nil {
		return
	}
	j.mu.Lock()
	rec := &obs.JobRecord{
		Time:       time.Now(),
		ID:         j.id,
		Tenant:     j.tenant,
		Name:       j.name,
		State:      j.state,
		ArmsTotal:  len(j.arms),
		ArmsDone:   j.done,
		ArmsFailed: j.failed,
		Error:      j.firstErr,
	}
	j.mu.Unlock()
	s.obs.Publish(rec)
}

// status snapshots one job. withArms includes the per-arm results.
func (j *job) status(withArms bool) *serveapi.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &serveapi.JobStatus{
		ID:         j.id,
		TraceID:    j.traceID,
		Tenant:     j.tenant,
		Name:       j.name,
		State:      j.state,
		ArmsTotal:  len(j.arms),
		ArmsDone:   j.done,
		ArmsFailed: j.failed,
		Error:      j.firstErr,
	}
	if withArms {
		st.Arms = make([]serveapi.ArmResult, len(j.arms))
		for i, a := range j.arms {
			if a.Metrics != nil {
				m := *a.Metrics
				a.Metrics = &m
			}
			st.Arms[i] = a
		}
	}
	st.Stamp()
	return st
}

// get finds a job by ID.
func (s *Server) get(id string) (*job, *serveapi.Error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, serveapi.Errorf(serveapi.CodeNotFound, "unknown job %q", id)
	}
	return j, nil
}

// Status returns one job's snapshot with per-arm results.
func (s *Server) Status(id string) (*serveapi.JobStatus, error) {
	j, aerr := s.get(id)
	if aerr != nil {
		return nil, aerr
	}
	return j.status(true), nil
}

// List returns summaries of every job, oldest first.
func (s *Server) List() *serveapi.JobList {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	out := &serveapi.JobList{Jobs: make([]serveapi.JobStatus, 0, len(ids))}
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j != nil {
			out.Jobs = append(out.Jobs, *j.status(false))
		}
	}
	return out
}

// Tenants summarizes every tenant's resource attribution, sorted by tenant
// name: jobs admitted and settled, load-shedding rejections, arms and
// simulated branches charged to the tenant, arms the capture cache or
// checkpoint store saved from recompute, and job-latency aggregates.
func (s *Server) Tenants() *serveapi.TenantList {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := &serveapi.TenantList{Tenants: make([]serveapi.TenantSummary, 0, len(names))}
	for _, name := range names {
		ts := s.tenants[name]
		sum := serveapi.TenantSummary{
			Tenant:        name,
			Jobs:          ts.jobs,
			JobsDone:      ts.jobsDone,
			JobsFailed:    ts.jobsFailed,
			JobsCancelled: ts.jobsCancelled,
			Shed:          ts.shed,
			ArmsRun:       ts.armsRun,
			ArmsFailed:    ts.armsFailed,
			ArmsSaved:     ts.armsSaved,
			Branches:      ts.branches,
			LatencyMaxMS:  float64(ts.latMax) / float64(time.Millisecond),
		}
		if ts.latCount > 0 {
			sum.LatencyMeanMS = float64(ts.latTotal) / float64(ts.latCount) / float64(time.Millisecond)
		}
		out.Tenants = append(out.Tenants, sum)
	}
	s.mu.Unlock()
	out.Stamp()
	return out
}

// Cancel stops a job's remaining arms cooperatively (running arms see their
// context end; pending arms never start) and returns the snapshot.
// Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) (*serveapi.JobStatus, error) {
	j, aerr := s.get(id)
	if aerr != nil {
		return nil, aerr
	}
	j.cancel()
	return j.status(true), nil
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain shuts the server down gracefully: admission stops immediately
// (submissions get CodeDraining), in-flight arms keep running, and Drain
// returns when every job has settled. If ctx ends first, the remaining arms
// are cancelled cooperatively — the harness checkpoints every arm that
// completed, so a later daemon resumes the unfinished jobs' arms with zero
// recompute of finished work. Idempotent and safe to call concurrently.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Close is Drain with immediate cancellation: in-flight arms are stopped
// cooperatively and Close returns when they have drained. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.cancel()
	})
	s.wg.Wait()
}
