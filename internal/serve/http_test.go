package serve_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"branchsim/internal/experiment"
	"branchsim/internal/obs"
	"branchsim/internal/serve"
	"branchsim/internal/telemetry"
	"branchsim/serveapi"
)

// telemetryLines extracts a journal's wall-clock-free telemetry records
// (interval, table_stats, topk), sorted — the byte-stable subset two
// equivalent sweeps must agree on exactly.
func telemetryLines(journal []byte) []string {
	var out []string
	for _, line := range strings.Split(string(journal), "\n") {
		for _, kind := range []string{`{"type":"interval"`, `{"type":"table_stats"`, `{"type":"topk"`} {
			if strings.HasPrefix(line, kind) {
				out = append(out, line)
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestDaemonJournalMatchesOffline runs the same grid once through a plain
// harness and once through the daemon, with full telemetry journaling, and
// demands (a) bit-identical per-arm metrics and (b) byte-identical telemetry
// journals — attaching the service must never perturb results or records.
// It also proves job lifecycle records stay off the journal entirely.
func TestDaemonJournalMatchesOffline(t *testing.T) {
	tcfg := telemetry.Config{Interval: 20_000, TableStats: true, TopK: 4}
	preds := []string{"gshare:1KB", "bimodal:1KB"}

	// Offline reference: direct harness runs.
	var offBuf bytes.Buffer
	offSink := obs.New(obs.WithJournal(obs.NewJournal(&offBuf)))
	h1 := experiment.NewQuickHarness(
		experiment.WithObserver(offSink),
		experiment.WithWorkers(2),
		experiment.WithTelemetry(tcfg),
	)
	want := map[string]serveapi.Metrics{}
	for _, pred := range preds {
		m, err := h1.Run(context.Background(), experiment.Arm{
			Workload: "compress", Input: "test", Pred: pred, Scheme: "none"})
		if err != nil {
			t.Fatalf("offline %s: %v", pred, err)
		}
		want[pred] = serveapi.Metrics{
			Instructions:      m.Instructions,
			Branches:          m.Branches,
			Taken:             m.TakenCount,
			Mispredicts:       m.Mispredicts,
			CollisionsTracked: m.CollisionsTracked,
			Collisions:        m.Collisions.Total,
			Constructive:      m.Collisions.Constructive,
			Destructive:       m.Collisions.Destructive,
		}
	}
	h1.Close()
	if err := offSink.Close(); err != nil {
		t.Fatal(err)
	}

	// Daemon run of the identical grid.
	var srvBuf bytes.Buffer
	srvSink := obs.New(obs.WithJournal(obs.NewJournal(&srvBuf)))
	h2 := experiment.NewQuickHarness(
		experiment.WithObserver(srvSink),
		experiment.WithWorkers(2),
		experiment.WithTelemetry(tcfg),
	)
	s, err := serve.New(serve.Config{Harness: h2, Obs: srvSink, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := s.Submit(context.Background(), &serveapi.JobSpec{Tenant: "alice",
		Workloads: []string{"compress"}, Inputs: []string{"test"}, Predictors: preds})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, ack.ID)
	if st.State != serveapi.StateDone {
		t.Fatalf("daemon job state = %s (error %q), want done", st.State, st.Error)
	}
	s.Close()
	h2.Close()
	if err := srvSink.Close(); err != nil {
		t.Fatal(err)
	}

	// (a) Per-arm metrics are bit-identical to the offline run.
	for _, a := range st.Arms {
		if a.Metrics == nil {
			t.Fatalf("arm %s has no metrics", a.Key())
		}
		if *a.Metrics != want[a.Predictor] {
			t.Errorf("arm %s metrics diverge from offline run:\n daemon  %+v\n offline %+v",
				a.Key(), *a.Metrics, want[a.Predictor])
		}
	}

	// (b) The telemetry journals agree byte for byte.
	off, srv := telemetryLines(offBuf.Bytes()), telemetryLines(srvBuf.Bytes())
	if len(off) == 0 {
		t.Fatal("offline journal has no telemetry records; the comparison is vacuous")
	}
	if !reflect.DeepEqual(off, srv) {
		t.Errorf("telemetry journals diverge: offline %d lines, daemon %d lines", len(off), len(srv))
		for i := 0; i < len(off) && i < len(srv); i++ {
			if off[i] != srv[i] {
				t.Errorf("first divergence:\n offline %s\n daemon  %s", off[i], srv[i])
				break
			}
		}
	}

	// Job lifecycle records are live-only: never in the journal.
	if strings.Contains(srvBuf.String(), `{"type":"job"`) {
		t.Error("daemon journal contains job records; they must stay on the live bus only")
	}
}

// TestHTTPEndToEnd drives the full stack — serveapi.Client → HTTP handler →
// daemon → shared harness — through a real obs.Server, with the job API
// mounted alongside /metrics and /events on one listener. WaitJob's SSE fast
// path is live here: the poll interval is set far above the job's runtime,
// so only the event-bus kick can finish the wait promptly.
func TestHTTPEndToEnd(t *testing.T) {
	sink := obs.New()
	h := experiment.NewQuickHarness(experiment.WithObserver(sink), experiment.WithWorkers(2))
	defer h.Close()
	s, err := serve.New(serve.Config{Harness: h, Obs: sink, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv, err := sink.Serve("127.0.0.1:0", obs.WithRootHandler(serve.Handler(s, nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	client := serveapi.NewClient(base,
		serveapi.WithTenant("alice"),
		serveapi.WithPollInterval(30*time.Second))

	ack, err := client.SubmitJob(ctx, &serveapi.JobSpec{Name: "e2e",
		Workloads: []string{"compress"}, Inputs: []string{"test"},
		Predictors: []string{"gshare:1KB", "bimodal:1KB"}})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if ack.Arms != 2 {
		t.Errorf("ack.Arms = %d, want 2", ack.Arms)
	}
	start := time.Now()
	st, err := client.WaitJob(ctx, ack.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if wait := time.Since(start); wait > 20*time.Second {
		t.Errorf("WaitJob took %v; the SSE fast path did not fire", wait)
	}
	if st.State != serveapi.StateDone || st.ArmsDone != 2 || st.Tenant != "alice" {
		t.Fatalf("job = %+v, want done/2 for alice", st)
	}
	for _, a := range st.Arms {
		if a.State != serveapi.ArmDone || a.Metrics == nil || a.Metrics.Branches == 0 {
			t.Errorf("arm %s: state=%s metrics=%+v", a.Key(), a.State, a.Metrics)
		}
	}

	// List shows the job; cancelling a done job is a no-op.
	jl, err := client.ListJobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jl.Jobs) != 1 || jl.Jobs[0].ID != ack.ID {
		t.Errorf("ListJobs = %+v, want the one submitted job", jl.Jobs)
	}
	if st, err := client.CancelJob(ctx, ack.ID); err != nil || st.State != serveapi.StateDone {
		t.Errorf("CancelJob(done job) = %v/%v, want done/nil", st, err)
	}

	// Typed errors cross the wire: unknown job, malformed body.
	if _, err := client.JobStatus(ctx, "j999999"); !serveapi.IsCode(err, serveapi.CodeNotFound) {
		t.Errorf("JobStatus(unknown): err = %v, want code %s", err, serveapi.CodeNotFound)
	}
	resp, err := http.Post(base+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"workloads":["compress"]}`)) // no {type,v} envelope
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("envelope-less submit: HTTP %d, want 400", resp.StatusCode)
	}
	if e, derr := serveapi.DecodeError(body); derr != nil || e.Code != serveapi.CodeBadRequest {
		t.Errorf("envelope-less submit body = %s (decode err %v), want typed %s", body, derr, serveapi.CodeBadRequest)
	}

	// The serve.* series are live on the same listener's /metrics.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"branchsim_serve_jobs_submitted 1",
		"branchsim_serve_jobs_done 1",
		"branchsim_serve_arms_done 2",
	} {
		if !bytes.Contains(metrics, []byte(series)) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}
