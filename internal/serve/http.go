package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"branchsim/serveapi"
)

// maxJobSpecBytes bounds a job submission body. Grids large enough to hit
// this would be rejected by the arm quota anyway.
const maxJobSpecBytes = 4 << 20

// Handler routes the versioned job API (/api/v1/*) to s and delegates every
// other path to next — typically the embedded dashboard — so one obs.Server
// serves /metrics, /events, the UI and the job API from a single listener.
// A nil next turns unmatched paths into 404s.
func Handler(s *Server, next http.Handler) http.Handler {
	if next == nil {
		next = http.NotFoundHandler()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxJobSpecBytes))
		if err != nil {
			writeError(w, serveapi.Errorf(serveapi.CodeBadRequest, "reading body: %v", err))
			return
		}
		spec, err := serveapi.DecodeJobSpec(body)
		if err != nil {
			writeError(w, serveapi.Errorf(serveapi.CodeBadRequest, "%v", err))
			return
		}
		if spec.Tenant == "" {
			spec.Tenant = r.Header.Get("X-Tenant")
		}
		// The request span roots the trace: the job span Submit opens
		// becomes its child, so `bpjournal -trace` reconstructs
		// request → job → arm → phases from the submission inward.
		rspan, rctx := s.obs.StartSpan(r.Context(), "request")
		if spec.Tenant != "" {
			rspan.SetTenant(spec.Tenant)
		}
		ack, err := s.Submit(rctx, spec)
		if err != nil {
			rspan.End(err)
			writeError(w, err)
			return
		}
		rspan.SetJob(ack.ID)
		rspan.End(nil)
		writeJSON(w, http.StatusOK, ack)
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /api/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Tenants())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/api/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, serveapi.Errorf(serveapi.CodeNotFound, "no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	mux.Handle("/", next)
	return mux
}

// writeJSON serves one wire message.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError serves a typed API error at its mapped HTTP status. Untyped
// errors (there should be none) become 500s with CodeBadRequest semantics
// hidden — the message still travels.
func writeError(w http.ResponseWriter, err error) {
	var e *serveapi.Error
	if !errors.As(err, &e) {
		e = &serveapi.Error{Code: "internal", Message: fmt.Sprintf("%v", err)}
		e.Stamp()
	}
	writeJSON(w, e.HTTPStatus(), e)
}
