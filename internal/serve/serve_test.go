package serve_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"branchsim/internal/experiment"
	"branchsim/internal/obs"
	"branchsim/internal/serve"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
	"branchsim/serveapi"
)

// countingProg wraps a workload so tests can count instrumented executions.
type countingProg struct {
	workload.Program
	execs *atomic.Int64
}

func (p countingProg) Run(ctx context.Context, input string, rec trace.Recorder) error {
	p.execs.Add(1)
	return p.Program.Run(ctx, input, rec)
}

// gateProg lets the first free executions through and blocks the rest until
// gate closes (or the arm's context ends), so tests can hold jobs in flight
// deterministically.
type gateProg struct {
	workload.Program
	free *atomic.Int64
	gate chan struct{}
}

func (p gateProg) Run(ctx context.Context, input string, rec trace.Recorder) error {
	if p.free.Add(-1) >= 0 {
		return p.Program.Run(ctx, input, rec)
	}
	select {
	case <-p.gate:
		return p.Program.Run(ctx, input, rec)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, s *serve.Server, id string) *serveapi.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after 2m: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMultiTenantDedupe submits two concurrent jobs from different tenants
// that share a (workload, input) pair and one predictor, and proves the
// shared harness deduplicates across the job boundary: one instrumented
// execution (one replay capture) total, and only the union of distinct arms
// simulated.
func TestMultiTenantDedupe(t *testing.T) {
	var execs atomic.Int64
	sink := obs.New()
	h := experiment.NewQuickHarness(
		experiment.WithObserver(sink),
		experiment.WithWorkers(4),
		experiment.WithLookup(func(name string) (workload.Program, error) {
			p, err := workload.Get(name)
			if err != nil {
				return nil, err
			}
			return countingProg{Program: p, execs: &execs}, nil
		}),
	)
	defer h.Close()
	s, err := serve.New(serve.Config{Harness: h, Obs: sink, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Both grids hit (compress, test); "gshare:1KB" appears in both.
	submit := func(tenant string, preds ...string) string {
		t.Helper()
		ack, err := s.Submit(context.Background(), &serveapi.JobSpec{
			Tenant:     tenant,
			Workloads:  []string{"compress"},
			Inputs:     []string{"test"},
			Predictors: preds,
		})
		if err != nil {
			t.Fatalf("Submit(%s): %v", tenant, err)
		}
		return ack.ID
	}
	idA := submit("alice", "bimodal:1KB", "gshare:1KB")
	idB := submit("bob", "ghist:1KB", "gshare:1KB")

	stA := waitTerminal(t, s, idA)
	stB := waitTerminal(t, s, idB)
	for _, st := range []*serveapi.JobStatus{stA, stB} {
		if st.State != serveapi.StateDone || st.ArmsDone != 2 {
			t.Fatalf("job %s: state=%s done=%d, want done/2 (error %q)", st.ID, st.State, st.ArmsDone, st.Error)
		}
	}

	// Exactly one instrumented execution of (compress, test) across both
	// tenants, and three simulations for the four arms (gshare:1KB shared).
	if n := execs.Load(); n != 1 {
		t.Errorf("workload executed %d times, want 1 (capture shared across jobs)", n)
	}
	if n := sink.Counter(obs.MReplayCaptures).Value(); n != 1 {
		t.Errorf("%s = %d, want 1", obs.MReplayCaptures, n)
	}
	if st := h.Stats(); st.RunsComputed != 3 {
		t.Errorf("RunsComputed = %d, want 3 (union of distinct arms)", st.RunsComputed)
	}

	// The shared arm's metrics are identical in both tenants' results.
	find := func(st *serveapi.JobStatus, pred string) *serveapi.Metrics {
		t.Helper()
		for _, a := range st.Arms {
			if a.Predictor == pred {
				if a.Metrics == nil {
					t.Fatalf("job %s arm %s has no metrics", st.ID, a.Key())
				}
				return a.Metrics
			}
		}
		t.Fatalf("job %s has no %s arm", st.ID, pred)
		return nil
	}
	mA, mB := find(stA, "gshare:1KB"), find(stB, "gshare:1KB")
	if *mA != *mB {
		t.Errorf("shared arm metrics diverge across tenants: %+v vs %+v", *mA, *mB)
	}

	// Serve metric series settled: nothing running, nothing pending.
	if g := sink.Gauge(obs.MServeJobsRunning).Value(); g != 0 {
		t.Errorf("%s = %d after both jobs, want 0", obs.MServeJobsRunning, g)
	}
	if g := sink.Gauge(obs.MServeArmsPending).Value(); g != 0 {
		t.Errorf("%s = %d after both jobs, want 0", obs.MServeArmsPending, g)
	}
	if n := sink.Counter(obs.MServeArmsDone).Value(); n != 4 {
		t.Errorf("%s = %d, want 4", obs.MServeArmsDone, n)
	}
}

// TestAdmissionControl exercises the typed rejections: per-tenant in-flight
// job quota, per-job arm quota, and draining — each a *serveapi.Error the
// client can branch on, never an unbounded queue.
func TestAdmissionControl(t *testing.T) {
	var free atomic.Int64 // 0: every execution blocks until gate closes
	gate := make(chan struct{})
	lookup := func(name string) (workload.Program, error) {
		p, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		return gateProg{Program: p, free: &free, gate: gate}, nil
	}
	sink := obs.New()
	h := experiment.NewQuickHarness(experiment.WithObserver(sink), experiment.WithLookup(lookup))
	defer h.Close()
	s, err := serve.New(serve.Config{
		Harness: h, Obs: sink, Workers: 4,
		MaxTenantJobs: 2, MaxArmsPerJob: 4,
		Lookup: lookup,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := func(tenant, pred string) *serveapi.JobSpec {
		return &serveapi.JobSpec{Tenant: tenant,
			Workloads: []string{"compress"}, Inputs: []string{"test"},
			Predictors: []string{pred}}
	}
	var ids []string
	for _, pred := range []string{"gshare:1KB", "bimodal:1KB"} {
		ack, err := s.Submit(context.Background(), spec("alice", pred))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, ack.ID)
	}

	// Third alice job: over the in-flight quota.
	if _, err := s.Submit(context.Background(), spec("alice", "ghist:1KB")); !serveapi.IsCode(err, serveapi.CodeQuotaJobs) {
		t.Errorf("over-quota submit: err = %v, want code %s", err, serveapi.CodeQuotaJobs)
	}
	// Quotas are per tenant: bob is unaffected by alice's jobs.
	ack, err := s.Submit(context.Background(), spec("bob", "ghist:1KB"))
	if err != nil {
		t.Fatalf("Submit(bob): %v", err)
	}
	ids = append(ids, ack.ID)

	// A grid over the arm quota is refused outright, with advice to split.
	_, err = s.Submit(context.Background(), &serveapi.JobSpec{Tenant: "bob",
		Workloads: []string{"compress"}, Inputs: []string{"test"},
		Predictors: []string{"gshare:1KB", "gshare:2KB", "gshare:4KB", "gshare:8KB", "gshare:16KB"}})
	if !serveapi.IsCode(err, serveapi.CodeQuotaArms) {
		t.Errorf("over-arm-quota submit: err = %v, want code %s", err, serveapi.CodeQuotaArms)
	}

	// Release the gate; every admitted job completes.
	close(gate)
	for _, id := range ids {
		if st := waitTerminal(t, s, id); st.State != serveapi.StateDone {
			t.Errorf("job %s: state = %s (error %q), want done", id, st.State, st.Error)
		}
	}

	// Drain: no further admissions, typed as such.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := s.Submit(context.Background(), spec("carol", "gshare:1KB")); !serveapi.IsCode(err, serveapi.CodeDraining) {
		t.Errorf("draining submit: err = %v, want code %s", err, serveapi.CodeDraining)
	}

	if n := sink.Counter(obs.MServeJobsSubmitted).Value(); n != 3 {
		t.Errorf("%s = %d, want 3", obs.MServeJobsSubmitted, n)
	}
	if n := sink.Counter(obs.MServeJobsRejected).Value(); n != 3 {
		t.Errorf("%s = %d, want 3 (job quota, arm quota, draining)", obs.MServeJobsRejected, n)
	}
	if n := sink.Counter(obs.MServeJobsDone).Value(); n != 3 {
		t.Errorf("%s = %d, want 3", obs.MServeJobsDone, n)
	}
}

// TestSubmitValidation proves a bad spec is a submission-time typed error
// naming the offending token, not N failed arms.
func TestSubmitValidation(t *testing.T) {
	h := experiment.NewQuickHarness()
	defer h.Close()
	s, err := serve.New(serve.Config{Harness: h})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := func() *serveapi.JobSpec {
		return &serveapi.JobSpec{Workloads: []string{"compress"},
			Inputs: []string{"test"}, Predictors: []string{"gshare:1KB"}}
	}
	cases := []struct {
		name   string
		mutate func(*serveapi.JobSpec)
		token  string
	}{
		{"unknown workload", func(s *serveapi.JobSpec) { s.Workloads = []string{"compresss"} }, "compresss"},
		{"unknown input", func(s *serveapi.JobSpec) { s.Inputs = []string{"reff"} }, "reff"},
		{"unknown predictor", func(s *serveapi.JobSpec) { s.Predictors = []string{"gsharre:1KB"} }, "gsharre"},
		{"bad option key", func(s *serveapi.JobSpec) { s.Predictors = []string{"gshare:1KB:z=3"} }, `"z"`},
		{"unknown scheme", func(s *serveapi.JobSpec) { s.Schemes = []string{"static9"} }, "static9"},
		{"empty grid", func(s *serveapi.JobSpec) { s.Predictors = nil }, "predictors"},
	}
	for _, tc := range cases {
		spec := base()
		tc.mutate(spec)
		_, err := s.Submit(context.Background(), spec)
		if !serveapi.IsCode(err, serveapi.CodeBadSpec) {
			t.Errorf("%s: err = %v, want code %s", tc.name, err, serveapi.CodeBadSpec)
			continue
		}
		if !strings.Contains(err.Error(), tc.token) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.token)
		}
	}

	if _, err := s.Status("j999999"); !serveapi.IsCode(err, serveapi.CodeNotFound) {
		t.Errorf("Status(unknown): err = %v, want code %s", err, serveapi.CodeNotFound)
	}
	if _, err := s.Cancel("j999999"); !serveapi.IsCode(err, serveapi.CodeNotFound) {
		t.Errorf("Cancel(unknown): err = %v, want code %s", err, serveapi.CodeNotFound)
	}
}

// TestDrainCheckpointResume kills a daemon mid-job and proves a fresh daemon
// over the same checkpoint directory finishes the job with zero recompute of
// the arms that completed before the kill.
func TestDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	spec := func() *serveapi.JobSpec {
		return &serveapi.JobSpec{Tenant: "alice", Name: "resume",
			Workloads: []string{"compress"}, Inputs: []string{"test"},
			Predictors: []string{"bimodal:1KB", "gshare:1KB", "ghist:1KB", "2bcgskew:1KB"}}
	}

	// First daemon: two arms complete, the rest block until drain cancels
	// them. No replay engine — each arm executes the (gated) program, so the
	// gate controls arm completion exactly.
	var free atomic.Int64
	free.Store(2)
	gate := make(chan struct{}) // never closed: blocked arms end only by cancellation
	cp1, err := experiment.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1 := experiment.NewQuickHarness(
		experiment.WithCheckpoint(cp1),
		experiment.WithLookup(func(name string) (workload.Program, error) {
			p, err := workload.Get(name)
			if err != nil {
				return nil, err
			}
			return gateProg{Program: p, free: &free, gate: gate}, nil
		}),
	)
	defer h1.Close()
	s1, err := serve.New(serve.Config{Harness: h1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := s1.Submit(context.Background(), spec())
	if err != nil {
		t.Fatal(err)
	}

	// Wait until exactly the two free arms have settled.
	deadline := time.Now().Add(time.Minute)
	var doneBefore int
	for {
		st, err := s1.Status(ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.ArmsDone >= 2 {
			doneBefore = st.ArmsDone
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("arms never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGTERM path: drain with a deadline. The blocked arms are cancelled
	// cooperatively; completed arms are already in the checkpoint.
	dctx, dcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer dcancel()
	if err := s1.Drain(dctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want deadline exceeded (arms were blocked)", err)
	}
	st1, err := s1.Status(ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != serveapi.StateCancelled {
		t.Fatalf("killed job state = %s, want cancelled", st1.State)
	}
	if st1.ArmsDone != doneBefore || st1.ArmsFailed != 0 {
		t.Fatalf("killed job done=%d failed=%d, want done=%d failed=0", st1.ArmsDone, st1.ArmsFailed, doneBefore)
	}
	s1.Close() // idempotent after Drain
	h1.Close()

	// Second daemon over the same checkpoint directory: resubmit the job and
	// demand zero recompute of the finished arms.
	cp2, err := experiment.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2 := experiment.NewQuickHarness(experiment.WithCheckpoint(cp2))
	defer h2.Close()
	s2, err := serve.New(serve.Config{Harness: h2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ack2, err := s2.Submit(context.Background(), spec())
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, s2, ack2.ID)
	if st2.State != serveapi.StateDone || st2.ArmsDone != 4 {
		t.Fatalf("resumed job: state=%s done=%d (error %q), want done/4", st2.State, st2.ArmsDone, st2.Error)
	}
	for _, a := range st2.Arms {
		if a.State != serveapi.ArmDone || a.Metrics == nil {
			t.Errorf("resumed arm %s: state=%s metrics=%v", a.Key(), a.State, a.Metrics)
		}
	}
	stats := h2.Stats()
	if want := uint64(4 - doneBefore); stats.RunsComputed != want {
		t.Errorf("resumed RunsComputed = %d, want %d (zero recompute of checkpointed arms)", stats.RunsComputed, want)
	}
	if want := uint64(doneBefore); stats.CheckpointHits != want {
		t.Errorf("resumed CheckpointHits = %d, want %d", stats.CheckpointHits, want)
	}
}

// TestCloseIdempotent closes a server twice, once concurrently with a
// running job.
func TestCloseIdempotent(t *testing.T) {
	h := experiment.NewQuickHarness(experiment.WithWorkers(2))
	defer h.Close()
	s, err := serve.New(serve.Config{Harness: h, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), &serveapi.JobSpec{Workloads: []string{"compress"},
		Inputs: []string{"test"}, Predictors: []string{"gshare:1KB"}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if !s.Draining() {
		t.Error("Draining() = false after Close")
	}
}
