package serve_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"branchsim/internal/experiment"
	"branchsim/internal/obs"
	"branchsim/internal/serve"
	"branchsim/serveapi"
)

// spanCollector drains a bus subscription and keeps every span frame it
// sees, so a test can assert on the live trace stream after the fact.
type spanCollector struct {
	mu    sync.Mutex
	spans []*obs.SpanRecord
	done  chan struct{}
}

func collectSpans(o *obs.Observer) *spanCollector {
	c := &spanCollector{done: make(chan struct{})}
	sub := o.Subscribe(4096)
	go func() {
		defer close(c.done)
		for line := range sub.C() {
			rec, err := obs.DecodeRecord(line)
			if err != nil {
				continue // non-record frames are not this collector's concern
			}
			if s, ok := rec.(*obs.SpanRecord); ok {
				c.mu.Lock()
				c.spans = append(c.spans, s)
				c.mu.Unlock()
			}
		}
	}()
	return c
}

// trace returns the collected spans of one trace.
func (c *spanCollector) trace(traceID string) []*obs.SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*obs.SpanRecord
	for _, s := range c.spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// TestTracingAndTenantAttribution is the service-level acceptance test for
// the tracing layer: two tenants submit overlapping grids over HTTP, and the
// live span stream must reconstruct each request's request → job → arm →
// harness tree, the second tenant's deduped arm must cross-link the first
// tenant's winning trace, the per-tenant ledger must attribute arms,
// branches, and dedupe savings to the right tenant, and the latency
// histograms must have observed every job.
func TestTracingAndTenantAttribution(t *testing.T) {
	sink := obs.New(obs.WithTracing())
	defer sink.Close()
	spans := collectSpans(sink)
	h := experiment.NewQuickHarness(experiment.WithObserver(sink), experiment.WithWorkers(2))
	defer h.Close()
	s, err := serve.New(serve.Config{Harness: h, Obs: sink, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv, err := sink.Serve("127.0.0.1:0", obs.WithRootHandler(serve.Handler(s, nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	submit := func(tenant string, preds ...string) *serveapi.Submitted {
		t.Helper()
		client := serveapi.NewClient(base, serveapi.WithTenant(tenant))
		ack, err := client.SubmitJob(ctx, &serveapi.JobSpec{
			Workloads: []string{"compress"}, Inputs: []string{"test"}, Predictors: preds})
		if err != nil {
			t.Fatalf("%s submit: %v", tenant, err)
		}
		if ack.TraceID == "" || len(ack.TraceID) != 16 {
			t.Fatalf("%s ack trace ID = %q, want 16 hex chars", tenant, ack.TraceID)
		}
		if st, err := client.WaitJob(ctx, ack.ID); err != nil || st.State != serveapi.StateDone {
			t.Fatalf("%s job = %+v (err %v), want done", tenant, st, err)
		}
		return ack
	}
	// Alice runs two arms; bob's single arm overlaps, so the harness serves
	// it from the memoized run — bob's latency decomposes into alice's work.
	aliceAck := submit("alice", "gshare:1KB", "bimodal:1KB")
	bobAck := submit("bob", "gshare:1KB")

	// The status endpoint reports the same trace the ack promised.
	st, err := s.Status(aliceAck.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != aliceAck.TraceID {
		t.Errorf("status trace ID %q != ack trace ID %q", st.TraceID, aliceAck.TraceID)
	}

	// Span frames publish asynchronously; wait for both traces to fill out.
	// Alice: request + job + 2 arms + at least the harness run spans below
	// them. Bob: request + job + 1 arm + the run:wait follower.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(spans.trace(aliceAck.TraceID)) >= 6 && len(spans.trace(bobAck.TraceID)) >= 4 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	checkTree := func(traceID, tenant string, arms int) (byName map[string][]*obs.SpanRecord) {
		t.Helper()
		trace := spans.trace(traceID)
		byID := map[string]*obs.SpanRecord{}
		byName = map[string][]*obs.SpanRecord{}
		for _, sp := range trace {
			byID[sp.SpanID] = sp
			byName[sp.Name] = append(byName[sp.Name], sp)
		}
		if n := len(byName["request"]); n != 1 {
			t.Fatalf("%s: %d request spans, want 1 (trace: %+v)", tenant, n, byName)
		}
		req := byName["request"][0]
		if req.ParentID != "" || req.Tenant != tenant || req.Job == "" {
			t.Errorf("%s request span = %+v, want parentless with tenant and job", tenant, req)
		}
		if n := len(byName["job"]); n != 1 {
			t.Fatalf("%s: %d job spans, want 1", tenant, n)
		}
		job := byName["job"][0]
		if job.ParentID != req.SpanID || job.Tenant != tenant || job.Job != req.Job {
			t.Errorf("%s job span = %+v, want child of request %s", tenant, job, req.SpanID)
		}
		if n := len(byName["arm"]); n != arms {
			t.Fatalf("%s: %d arm spans, want %d", tenant, n, arms)
		}
		keys := map[string]bool{}
		for _, a := range byName["arm"] {
			if a.ParentID != job.SpanID || a.Key == "" {
				t.Errorf("%s arm span = %+v, want keyed child of job %s", tenant, a, job.SpanID)
			}
			keys[a.Key] = true
		}
		if len(keys) != arms {
			t.Errorf("%s arm keys not distinct: %v", tenant, keys)
		}
		return byName
	}
	alice := checkTree(aliceAck.TraceID, "alice", 2)
	bob := checkTree(bobAck.TraceID, "bob", 1)

	// Alice computed her arms: each arm span parents a harness "run" span
	// in the same trace.
	armIDs := map[string]bool{}
	for _, a := range alice["arm"] {
		armIDs[a.SpanID] = true
	}
	var runs int
	for _, r := range alice["run"] {
		if armIDs[r.ParentID] {
			runs++
		}
	}
	if runs != 2 {
		t.Errorf("alice: %d harness run spans under her arm spans, want 2", runs)
	}

	// Bob's deduped arm is attributed to singleflight and his follower span
	// cross-links the winner — alice's trace.
	if src := bob["arm"][0].Source; src != obs.SourceSingleflight {
		t.Errorf("bob arm source = %q, want %q", src, obs.SourceSingleflight)
	}
	var linked bool
	for _, w := range bob["run:wait"] {
		for _, l := range w.Links {
			if l.Kind == "singleflight" && l.TraceID == aliceAck.TraceID {
				linked = true
			}
		}
	}
	if !linked {
		t.Errorf("bob's follower span does not link alice's trace %s: %+v", aliceAck.TraceID, bob["run:wait"])
	}

	// Per-tenant attribution: the ledger and the wire summary agree.
	tl := s.Tenants()
	if len(tl.Tenants) != 2 || tl.Tenants[0].Tenant != "alice" || tl.Tenants[1].Tenant != "bob" {
		t.Fatalf("tenants = %+v, want sorted [alice bob]", tl.Tenants)
	}
	a, b := tl.Tenants[0], tl.Tenants[1]
	if a.Jobs != 1 || a.JobsDone != 1 || a.ArmsRun != 2 || a.ArmsSaved != 0 || a.Branches == 0 || a.Shed != 0 {
		t.Errorf("alice summary = %+v", a)
	}
	if b.Jobs != 1 || b.JobsDone != 1 || b.ArmsRun != 1 || b.ArmsSaved != 1 || b.Branches == 0 {
		t.Errorf("bob summary = %+v (dedupe must still credit bob's branches and savings)", b)
	}
	if a.LatencyMeanMS <= 0 || a.LatencyMaxMS < a.LatencyMeanMS {
		t.Errorf("alice latency = mean %v max %v ms", a.LatencyMeanMS, a.LatencyMaxMS)
	}

	// The same summary crosses the wire via GET /api/v1/tenants.
	wire, err := serveapi.NewClient(base).Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire.Tenants) != 2 || wire.Tenants[1] != b {
		t.Errorf("wire tenants = %+v, want %+v", wire.Tenants, tl.Tenants)
	}

	// Latency histograms observed every job; queue-wait saw the arms.
	if got := sink.Histogram(obs.MServeJobLatency).Count(); got != 2 {
		t.Errorf("job latency observations = %d, want 2", got)
	}
	if sink.Histogram(obs.MServeQueueWait).Count() == 0 {
		t.Error("queue-wait histogram never observed")
	}
	if got := sink.TenantHistogram(obs.MTenantJobLatency, "alice").Count(); got != 1 {
		t.Errorf("alice job-latency observations = %d, want 1", got)
	}

	// And /metrics renders the per-tenant and histogram series.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		`branchsim_serve_tenant_arms_run{tenant="alice"} 2`,
		`branchsim_serve_tenant_arms_run{tenant="bob"} 1`,
		`branchsim_serve_tenant_arms_saved{tenant="bob"} 1`,
		`branchsim_serve_job_latency_bucket{le="+Inf"} 2`,
		"branchsim_serve_job_latency_count 2",
		"# TYPE branchsim_serve_queue_wait histogram",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}
