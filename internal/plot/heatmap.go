package plot

import (
	"fmt"
	"math"
	"strings"
)

// HeatmapChart renders a dense matrix as a colored cell grid — the natural
// picture for the aliasing question the paper asks: which (victim, aggressor)
// branch pairs fight over predictor entries, and how hard. Rows and columns
// are categorical labels; cell intensity is linear in the value, white at
// zero and deep red at the matrix maximum.
type HeatmapChart struct {
	Title  string
	XLabel string
	YLabel string

	rows, cols []string
	cells      [][]float64
}

// heatmap geometry (pixels)
const (
	heatMarginL = 110
	heatMarginR = 70
	heatMarginT = 48
	heatMarginB = 92
)

// NewHeatmap creates a rows×cols heatmap with all cells zero.
func NewHeatmap(title string, rows, cols []string) *HeatmapChart {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &HeatmapChart{
		Title: title,
		rows:  append([]string(nil), rows...),
		cols:  append([]string(nil), cols...),
		cells: cells,
	}
}

// Set assigns the value of one cell.
func (h *HeatmapChart) Set(row, col int, v float64) error {
	if row < 0 || row >= len(h.rows) || col < 0 || col >= len(h.cols) {
		return fmt.Errorf("plot: heatmap cell (%d,%d) outside %dx%d matrix", row, col, len(h.rows), len(h.cols))
	}
	h.cells[row][col] = v
	return nil
}

// heatColor maps t in [0,1] to a white→deep-red ramp.
func heatColor(t float64) string {
	if math.IsNaN(t) || t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	lerp := func(a, b float64) int { return int(a + t*(b-a) + 0.5) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(255, 165), lerp(255, 15), lerp(255, 21))
}

// SVG renders the heatmap.
func (h *HeatmapChart) SVG() string {
	nR, nC := len(h.rows), len(h.cols)
	plotW := chartW - heatMarginL - heatMarginR
	plotH := chartH - heatMarginT - heatMarginB

	maxV := 0.0
	for _, row := range h.cells {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		chartW, chartH, chartW, chartH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", heatMarginL, esc(h.Title))
	if nR == 0 || nC == 0 {
		b.WriteString("</svg>\n")
		return b.String()
	}

	cellW := float64(plotW) / float64(nC)
	cellH := float64(plotH) / float64(nR)
	for r := 0; r < nR; r++ {
		for c := 0; c < nC; c++ {
			v := h.cells[r][c]
			t := 0.0
			if maxV > 0 {
				t = v / maxV
			}
			x := float64(heatMarginL) + float64(c)*cellW
			y := float64(heatMarginT) + float64(r)*cellH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#eee"><title>%s × %s: %s</title></rect>`+"\n",
				x, y, cellW, cellH, heatColor(t), esc(h.rows[r]), esc(h.cols[c]), trimFloat(v))
		}
	}

	// row labels (left, vertically centered on the cell)
	for r, lab := range h.rows {
		y := float64(heatMarginT) + (float64(r)+0.5)*cellH
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			heatMarginL-6, y+3, esc(lab))
	}
	// column labels (bottom, rotated so dense matrices stay readable)
	for c, lab := range h.cols {
		x := float64(heatMarginL) + (float64(c)+0.5)*cellW
		y := heatMarginT + plotH + 12
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="end" transform="rotate(-55 %.1f %d)">%s</text>`+"\n",
			x, y, x, y, esc(lab))
	}
	// axis titles
	if h.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			heatMarginL+plotW/2, chartH-10, esc(h.XLabel))
	}
	if h.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			heatMarginT+plotH/2, heatMarginT+plotH/2, esc(h.YLabel))
	}

	// color scale: a five-step swatch column with the data maximum at the top
	steps := 5
	swatchH := 18.0
	sx := heatMarginL + plotW + 16
	for i := 0; i < steps; i++ {
		t := float64(steps-i) / float64(steps)
		y := float64(heatMarginT) + float64(i)*swatchH
		fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="14" height="%.1f" fill="%s" stroke="#ccc"/>`+"\n",
			sx, y, swatchH, heatColor(t))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="9">%s</text>`+"\n",
			sx+18, y+5, trimFloat(maxV*t))
	}

	b.WriteString("</svg>\n")
	return b.String()
}
