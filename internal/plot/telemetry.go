package plot

import (
	"fmt"
	"sort"

	"branchsim/internal/obs"
)

// IntervalMetric selects the y quantity an interval curve plots.
type IntervalMetric struct {
	// Name labels the y axis.
	Name string
	// Of extracts the value from one interval record.
	Of func(*obs.IntervalRecord) float64
}

// Built-in interval metrics. MetricMISPKI is the paper's primary metric;
// MetricDestructiveKI isolates the aliasing cost the paper's combined schemes
// attack.
var (
	MetricMISPKI = IntervalMetric{Name: "MISPs/KI", Of: func(r *obs.IntervalRecord) float64 { return r.MISPKI() }}

	MetricAccuracy = IntervalMetric{Name: "accuracy", Of: func(r *obs.IntervalRecord) float64 { return r.Accuracy() }}

	MetricDestructiveKI = IntervalMetric{Name: "destructive collisions/KI", Of: func(r *obs.IntervalRecord) float64 {
		if r.DInstructions == 0 {
			return 0
		}
		return 1000 * float64(r.DDestructive) / float64(r.DInstructions)
	}}
)

// IntervalCurves builds a line chart from interval telemetry records: one
// series per arm (keyed by predictor, or by the full workload|input|predictor
// key when the records span several workloads), one x category per interval
// boundary, labeled with the cumulative instruction count. Interval
// boundaries are a property of the instruction stream alone, so arms replayed
// from the same capture share them; an arm missing a boundary (a shorter
// run) plots zero there. A nil metric.Of defaults to MetricMISPKI.
func IntervalCurves(title string, recs []obs.IntervalRecord, metric IntervalMetric) (*Chart, error) {
	if metric.Of == nil {
		metric = MetricMISPKI
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("plot: no interval records to chart")
	}

	sameStream := true
	for i := range recs {
		if recs[i].Workload != recs[0].Workload || recs[i].Input != recs[0].Input {
			sameStream = false
			break
		}
	}
	name := func(r *obs.IntervalRecord) string {
		if sameStream {
			return r.Predictor
		}
		return r.Key()
	}

	bySeries := map[string]map[int]float64{}
	var order []string
	boundary := map[int]uint64{} // seq → cumulative instructions at the seal
	for i := range recs {
		r := &recs[i]
		key := name(r)
		m := bySeries[key]
		if m == nil {
			m = map[int]float64{}
			bySeries[key] = m
			order = append(order, key)
		}
		m[r.Seq] = metric.Of(r)
		if r.Instructions > boundary[r.Seq] {
			boundary[r.Seq] = r.Instructions
		}
	}

	seqs := make([]int, 0, len(boundary))
	for s := range boundary {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	cats := make([]string, len(seqs))
	for i, s := range seqs {
		cats[i] = formatInstr(boundary[s])
	}
	c := New(title, Line, cats)
	c.XLabel = "instructions"
	c.YLabel = metric.Name
	for _, key := range order {
		vals := make([]float64, len(seqs))
		for i, s := range seqs {
			vals[i] = bySeries[key][s]
		}
		if err := c.AddSeries(key, vals); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// formatInstr renders an instruction count compactly for axis labels.
func formatInstr(n uint64) string {
	switch {
	case n >= 1_000_000 && n%100_000 == 0:
		if n%1_000_000 == 0 {
			return fmt.Sprintf("%dM", n/1_000_000)
		}
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// ConfidenceMetric selects the y quantity a confidence curve plots.
type ConfidenceMetric struct {
	// Name labels the y axis.
	Name string
	// Of extracts the value from one confidence record.
	Of func(*obs.ConfidenceRecord) float64
}

// Built-in confidence metrics. MetricLowRate tracks how often the predictor
// flags its own prediction unsure; MetricLowMispShare tracks what fraction
// of the interval's mispredictions fell on those flagged predictions — the
// cover a confidence-based static filter would get.
var (
	MetricLowRate = ConfidenceMetric{Name: "low-confidence rate", Of: func(r *obs.ConfidenceRecord) float64 { return r.LowRate() }}

	MetricLowMispShare = ConfidenceMetric{Name: "low-confidence mispredict share", Of: func(r *obs.ConfidenceRecord) float64 { return r.LowMispShare() }}
)

// ConfidenceCurves builds a line chart from confidence telemetry records:
// one series per arm, one x category per interval boundary, exactly like
// IntervalCurves. A nil metric.Of defaults to MetricLowRate.
func ConfidenceCurves(title string, recs []obs.ConfidenceRecord, metric ConfidenceMetric) (*Chart, error) {
	if metric.Of == nil {
		metric = MetricLowRate
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("plot: no confidence records to chart")
	}

	sameStream := true
	for i := range recs {
		if recs[i].Workload != recs[0].Workload || recs[i].Input != recs[0].Input {
			sameStream = false
			break
		}
	}
	name := func(r *obs.ConfidenceRecord) string {
		if sameStream {
			return r.Predictor
		}
		return r.Key()
	}

	bySeries := map[string]map[int]float64{}
	var order []string
	boundary := map[int]uint64{}
	for i := range recs {
		r := &recs[i]
		key := name(r)
		m := bySeries[key]
		if m == nil {
			m = map[int]float64{}
			bySeries[key] = m
			order = append(order, key)
		}
		m[r.Seq] = metric.Of(r)
		if r.Instructions > boundary[r.Seq] {
			boundary[r.Seq] = r.Instructions
		}
	}

	seqs := make([]int, 0, len(boundary))
	for s := range boundary {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	cats := make([]string, len(seqs))
	for i, s := range seqs {
		cats[i] = formatInstr(boundary[s])
	}
	c := New(title, Line, cats)
	c.XLabel = "instructions"
	c.YLabel = metric.Name
	for _, key := range order {
		vals := make([]float64, len(seqs))
		for i, s := range seqs {
			vals[i] = bySeries[key][s]
		}
		if err := c.AddSeries(key, vals); err != nil {
			return nil, err
		}
	}
	return c, nil
}
