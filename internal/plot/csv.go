package plot

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FromCSV builds a chart from a table CSV as written by the report package:
// a header row, one row per x category, with the category name in the first
// selected column and numeric series in the others.
//
// xCol names the category column; seriesCols names the numeric columns to
// plot (empty = every column whose cells all parse as numbers, optionally
// stripping a trailing "%" or leading "+").
func FromCSV(r io.Reader, title string, kind Kind, xCol string, seriesCols []string) (*Chart, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("plot: reading csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("plot: csv has no data rows")
	}
	header := rows[0]
	data := rows[1:]

	colIdx := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		return -1
	}
	xi := 0
	if xCol != "" {
		xi = colIdx(xCol)
		if xi < 0 {
			return nil, fmt.Errorf("plot: no column %q (have %v)", xCol, header)
		}
	}

	// pick series columns
	var cols []int
	if len(seriesCols) > 0 {
		for _, name := range seriesCols {
			i := colIdx(name)
			if i < 0 {
				return nil, fmt.Errorf("plot: no column %q (have %v)", name, header)
			}
			cols = append(cols, i)
		}
	} else {
		for i := range header {
			if i == xi {
				continue
			}
			numeric := true
			for _, row := range data {
				if _, err := parseCell(row[i]); err != nil {
					numeric = false
					break
				}
			}
			if numeric {
				cols = append(cols, i)
			}
		}
		if len(cols) == 0 {
			return nil, fmt.Errorf("plot: no numeric columns found")
		}
	}

	categories := make([]string, len(data))
	for i, row := range data {
		categories[i] = row[xi]
	}
	c := New(title, kind, categories)
	for _, ci := range cols {
		values := make([]float64, len(data))
		for ri, row := range data {
			v, err := parseCell(row[ci])
			if err != nil {
				return nil, fmt.Errorf("plot: column %q row %d: %w", header[ci], ri+1, err)
			}
			values[ri] = v
		}
		if err := c.AddSeries(header[ci], values); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// parseCell parses a numeric cell, tolerating the report package's
// percentage ("+5.0%", "12.3%") and plain float formats.
func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	return strconv.ParseFloat(s, 64)
}
