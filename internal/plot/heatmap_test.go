package plot

import (
	"strings"
	"testing"

	"branchsim/internal/obs"
)

func TestHeatmapSVG(t *testing.T) {
	h := NewHeatmap("Aliasing", []string{"0x100", "0x200"}, []string{"0x100", "0x200", "0x300"})
	h.XLabel = "aggressor"
	h.YLabel = "victim"
	if err := h.Set(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := h.Set(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	svg := h.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "Aliasing", "aggressor", "victim", "0x300",
		heatColor(1), // the max cell is full intensity
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// background + 2x3 cells + 5 scale swatches
	if got := strings.Count(svg, "<rect"); got != 1+6+5 {
		t.Errorf("%d rects, want 12", got)
	}
}

func TestHeatmapSetBounds(t *testing.T) {
	h := NewHeatmap("t", []string{"r"}, []string{"c"})
	for _, rc := range [][2]int{{-1, 0}, {0, -1}, {1, 0}, {0, 1}} {
		if err := h.Set(rc[0], rc[1], 1); err == nil {
			t.Errorf("Set(%d,%d) accepted out of bounds", rc[0], rc[1])
		}
	}
}

func TestHeatmapEmpty(t *testing.T) {
	h := NewHeatmap("empty", nil, nil)
	svg := h.SVG()
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("empty heatmap must still close the document")
	}
}

func TestHeatColorRamp(t *testing.T) {
	if got := heatColor(0); got != "#ffffff" {
		t.Errorf("heatColor(0) = %s, want white", got)
	}
	if got := heatColor(1); got != "#a50f15" {
		t.Errorf("heatColor(1) = %s, want deep red", got)
	}
	if heatColor(-1) != heatColor(0) || heatColor(2) != heatColor(1) {
		t.Error("heatColor must clamp to [0,1]")
	}
}

func interval(pred string, seq int, instr, dInstr, dMisp uint64) obs.IntervalRecord {
	return obs.IntervalRecord{
		Workload: "w", Input: "test", Predictor: pred,
		Seq: seq, Instructions: instr,
		DInstructions: dInstr, DBranches: dInstr / 5, DMispredicts: dMisp,
	}
}

func TestIntervalCurves(t *testing.T) {
	recs := []obs.IntervalRecord{
		interval("bimodal:8KB", 0, 1000, 1000, 10),
		interval("bimodal:8KB", 1, 2000, 1000, 5),
		interval("gshare:8KB", 0, 1000, 1000, 8),
		interval("gshare:8KB", 1, 2000, 1000, 2),
	}
	c, err := IntervalCurves("MISP/KI over time", recs, MetricMISPKI)
	if err != nil {
		t.Fatal(err)
	}
	svg := c.SVG()
	for _, want := range []string{"bimodal:8KB", "gshare:8KB", "MISPs/KI", "instructions", "1K", "2K"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d series, want 2", got)
	}
}

func TestIntervalCurvesMultiWorkloadKeys(t *testing.T) {
	recs := []obs.IntervalRecord{
		interval("bimodal:8KB", 0, 1000, 1000, 10),
		{Workload: "other", Input: "test", Predictor: "bimodal:8KB", Seq: 0, Instructions: 1000, DInstructions: 1000, DMispredicts: 3},
	}
	c, err := IntervalCurves("mixed", recs, IntervalMetric{})
	if err != nil {
		t.Fatal(err)
	}
	svg := c.SVG()
	if !strings.Contains(svg, "w/test/bimodal:8KB") || !strings.Contains(svg, "other/test/bimodal:8KB") {
		t.Error("mixed-workload journals must use full arm keys as series names")
	}
}

func TestIntervalCurvesEmpty(t *testing.T) {
	if _, err := IntervalCurves("t", nil, MetricMISPKI); err == nil {
		t.Fatal("empty record set accepted")
	}
}

func TestFormatInstr(t *testing.T) {
	cases := map[uint64]string{
		0:         "0",
		999:       "999",
		1000:      "1K",
		100_000:   "100K",
		1_000_000: "1M",
		1_500_000: "1.5M",
		2_345_678: "2.35M",
	}
	for in, want := range cases {
		if got := formatInstr(in); got != want {
			t.Errorf("formatInstr(%d) = %q, want %q", in, got, want)
		}
	}
}
