// Package plot renders the experiment CSVs as standalone SVG charts — the
// paper's artifacts are figures, and this closes the loop from simulation to
// picture with no dependencies beyond the standard library.
//
// Two chart kinds cover the paper's needs: line charts for the size sweeps
// (Figures 1–6) and grouped bar charts for the scheme comparisons
// (Figures 7–13). The x axis is categorical (sizes, program names); y is
// linear from zero, which is how the paper plots MISPs/KI.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Kind selects the chart geometry.
type Kind int

const (
	// Line draws one polyline per series over categorical x positions.
	Line Kind = iota
	// Bars draws grouped vertical bars, one group per x category.
	Bars
)

// Chart is a categorical-x, linear-y chart.
type Chart struct {
	Title  string
	Kind   Kind
	XLabel string
	YLabel string

	categories []string
	series     []series
}

type series struct {
	name   string
	values []float64
}

// chart geometry (pixels)
const (
	chartW  = 760
	chartH  = 420
	marginL = 70
	marginR = 170
	marginT = 48
	marginB = 64
	plotW   = chartW - marginL - marginR
	plotH   = chartH - marginT - marginB
)

// seriesColors is a small qualitative palette.
var seriesColors = []string{
	"#1f5fbf", "#c2452d", "#2e8540", "#8031a7", "#b8860b", "#11767a", "#6b6b6b",
}

// New creates a chart over the given x categories.
func New(title string, kind Kind, categories []string) *Chart {
	return &Chart{Title: title, Kind: kind, categories: append([]string(nil), categories...)}
}

// AddSeries appends a named series; it must have one value per category.
func (c *Chart) AddSeries(name string, values []float64) error {
	if len(values) != len(c.categories) {
		return fmt.Errorf("plot: series %q has %d values for %d categories", name, len(values), len(c.categories))
	}
	c.series = append(c.series, series{name: name, values: append([]float64(nil), values...)})
	return nil
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// yMax returns the y-axis top: the data maximum rounded up to a clean step.
func (c *Chart) yMax() float64 {
	m := 0.0
	for _, s := range c.series {
		for _, v := range s.values {
			if v > m {
				m = v
			}
		}
	}
	if m <= 0 {
		return 1
	}
	// round up to 1/2/5 × 10^k
	exp := math.Floor(math.Log10(m))
	base := math.Pow(10, exp)
	for _, mult := range []float64{1, 2, 5, 10} {
		if m <= mult*base {
			return mult * base
		}
	}
	return 10 * base
}

func (c *Chart) xPos(i int) float64 {
	n := len(c.categories)
	if n == 1 {
		return marginL + plotW/2
	}
	return marginL + float64(i)*plotW/float64(n-1)
}

// SVG renders the chart.
func (c *Chart) SVG() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		chartW, chartH, chartW, chartH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	top := c.yMax()
	yPos := func(v float64) float64 {
		return marginT + plotH - v/top*plotH
	}

	// gridlines + y ticks
	const ticks = 5
	for t := 0; t <= ticks; t++ {
		v := top * float64(t) / ticks
		y := yPos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, trimFloat(v))
	}
	// axes
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)

	// x category labels
	for i, cat := range c.categories {
		var x float64
		if c.Kind == Bars {
			x = marginL + (float64(i)+0.5)*plotW/float64(len(c.categories))
		} else {
			x = c.xPos(i)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginT+plotH+18, esc(cat))
	}
	// axis titles
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, chartH-14, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))
	}

	// data
	switch c.Kind {
	case Line:
		for si, s := range c.series {
			color := seriesColors[si%len(seriesColors)]
			var pts []string
			for i, v := range s.values {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", c.xPos(i), yPos(v)))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
			for i, v := range s.values {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
					c.xPos(i), yPos(v), color)
			}
		}
	case Bars:
		nCat := len(c.categories)
		nSer := len(c.series)
		groupW := float64(plotW) / float64(nCat)
		barW := groupW * 0.8 / float64(max(nSer, 1))
		for si, s := range c.series {
			color := seriesColors[si%len(seriesColors)]
			for i, v := range s.values {
				// the y axis starts at zero (MISP/KI-style quantities);
				// negative values clamp to a zero-height bar at the axis
				if v < 0 {
					v = 0
				}
				x := marginL + float64(i)*groupW + groupW*0.1 + float64(si)*barW
				y := yPos(v)
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, y, barW, float64(marginT+plotH)-y, color)
			}
		}
	}

	// legend
	for si, s := range c.series {
		color := seriesColors[si%len(seriesColors)]
		y := marginT + 10 + si*20
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			marginL+plotW+14, y, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			marginL+plotW+30, y+10, esc(s.name))
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// trimFloat formats a tick value without trailing zeros.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
