package plot

import (
	"strings"
	"testing"
)

func TestLineChartSVG(t *testing.T) {
	c := New("Demo sweep", Line, []string{"1KB", "2KB", "4KB"})
	if err := c.AddSeries("none", []float64{3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSeries("static", []float64{2, 1.5, 1}); err != nil {
		t.Fatal(err)
	}
	c.YLabel = "MISP/KI"
	svg := c.SVG()

	for _, want := range []string{
		"<svg", "</svg>", "Demo sweep", "polyline", "MISP/KI",
		"1KB", "2KB", "4KB", "none", "static",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Errorf("%d markers, want 6", got)
	}
}

func TestBarChartSVG(t *testing.T) {
	c := New("Bars", Bars, []string{"go", "gcc"})
	if err := c.AddSeries("a", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSeries("b", []float64{2, 4}); err != nil {
		t.Fatal(err)
	}
	svg := c.SVG()
	// 4 data bars + legend swatches (2) + background rect
	if got := strings.Count(svg, "<rect"); got != 4+2+1 {
		t.Errorf("%d rects, want 7", got)
	}
}

func TestSeriesLengthMismatch(t *testing.T) {
	c := New("t", Line, []string{"a", "b"})
	if err := c.AddSeries("s", []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEscaping(t *testing.T) {
	c := New(`<script>&"`, Line, []string{"x<y"})
	if err := c.AddSeries("a&b", []float64{1}); err != nil {
		t.Fatal(err)
	}
	svg := c.SVG()
	if strings.Contains(svg, "<script>") {
		t.Fatal("title not escaped")
	}
	for _, want := range []string{"&lt;script&gt;", "x&lt;y", "a&amp;b"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing escaped form %q", want)
		}
	}
}

func TestYMaxRounding(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1.3: 2, 3.9: 5, 7.2: 10, 43: 50, 170: 200, 9.99: 10,
	}
	for v, want := range cases {
		c := New("t", Line, []string{"a"})
		if err := c.AddSeries("s", []float64{v}); err != nil {
			t.Fatal(err)
		}
		if got := c.yMax(); got != want {
			t.Errorf("yMax(%v) = %v, want %v", v, got, want)
		}
	}
	empty := New("t", Line, []string{"a"})
	if empty.yMax() != 1 {
		t.Errorf("empty chart yMax = %v", empty.yMax())
	}
}

func TestFromCSVAutoSeries(t *testing.T) {
	csvData := `Size,MISP/KI none,MISP/KI static,Note
1KB,3.0,2.0,hi
2KB,2.5,1.5,there
`
	c, err := FromCSV(strings.NewReader(csvData), "t", Line, "Size", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.series) != 2 {
		t.Fatalf("auto-detected %d series, want 2 (Note is not numeric)", len(c.series))
	}
	if c.series[0].values[1] != 2.5 {
		t.Fatalf("series values wrong: %+v", c.series[0])
	}
	if c.categories[0] != "1KB" {
		t.Fatalf("categories wrong: %v", c.categories)
	}
}

func TestFromCSVExplicitSeriesAndPercent(t *testing.T) {
	csvData := `Program,Improvement
gcc,+42.4%
go,-1.8%
`
	c, err := FromCSV(strings.NewReader(csvData), "t", Bars, "Program", []string{"Improvement"})
	if err != nil {
		t.Fatal(err)
	}
	if c.series[0].values[0] != 42.4 || c.series[0].values[1] != -1.8 {
		t.Fatalf("percent parsing wrong: %+v", c.series[0].values)
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, err := FromCSV(strings.NewReader("just,a,header\n"), "t", Line, "", nil); err == nil {
		t.Fatal("headerless csv accepted")
	}
	if _, err := FromCSV(strings.NewReader("a,b\n1,2\n"), "t", Line, "nope", nil); err == nil {
		t.Fatal("missing x column accepted")
	}
	if _, err := FromCSV(strings.NewReader("a,b\nx,y\n"), "t", Line, "a", []string{"b"}); err == nil {
		t.Fatal("non-numeric explicit series accepted")
	}
	if _, err := FromCSV(strings.NewReader("a,b\nx,y\n"), "t", Line, "a", nil); err == nil {
		t.Fatal("csv with no numeric columns accepted")
	}
}
