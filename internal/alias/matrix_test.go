package alias

import "testing"

func TestMatrixBuildsConflictGrid(t *testing.T) {
	a, err := NewAnalyzer("bimodal", 16) // 64 entries
	if err != nil {
		t.Fatal(err)
	}
	pcA := uint64(0x1000)
	pcB := pcA + 64*4 // aliases with A
	// A and B ping-pong over one entry: each eviction is a conflict.
	for i := 0; i < 5; i++ {
		a.Branch(pcA, true)
		a.Branch(pcB, false)
	}

	m := a.Matrix(0)
	if len(m.PCs) != 2 {
		t.Fatalf("PCs = %v, want the two aliasing branches", m.PCs)
	}
	idx := map[uint64]int{}
	for i, pc := range m.PCs {
		idx[pc] = i
	}
	ai, bi := idx[pcA], idx[pcB]
	// B conflicts with A's residue 5 times; A with B's 4 times (first A
	// lookup hits an untouched entry).
	if m.Counts[bi][ai] != 5 || m.Counts[ai][bi] != 4 {
		t.Fatalf("Counts = %v", m.Counts)
	}
	if m.Counts[ai][ai] != 0 || m.Counts[bi][bi] != 0 {
		t.Fatal("diagonal must stay zero: a branch cannot conflict with itself")
	}
	// opposite-direction pair, so every conflict is opposed
	if m.Opposed[bi][ai] != m.Counts[bi][ai] || m.Opposed[ai][bi] != m.Counts[ai][bi] {
		t.Fatalf("Opposed = %v, want all conflicts opposed", m.Opposed)
	}
	if m.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", m.Dropped)
	}
	if got := m.Labels(); got[0] != "0x1000" && got[1] != "0x1000" {
		t.Fatalf("Labels = %v", got)
	}
}

func TestMatrixTopNDropsColdPairs(t *testing.T) {
	a, _ := NewAnalyzer("bimodal", 16)
	hotA, hotB := uint64(0x1000), uint64(0x1000+64*4)
	coldA, coldB := uint64(0x2004), uint64(0x2004+64*4) // different entry than the hot pair
	for i := 0; i < 10; i++ {
		a.Branch(hotA, true)
		a.Branch(hotB, false)
	}
	a.Branch(coldA, true)
	a.Branch(coldB, true) // one cold conflict

	m := a.Matrix(2)
	if len(m.PCs) != 2 {
		t.Fatalf("PCs = %v, want 2", m.PCs)
	}
	for _, pc := range m.PCs {
		if pc != hotA && pc != hotB {
			t.Fatalf("top-2 selected cold branch 0x%x", pc)
		}
	}
	if m.Dropped != 1 {
		t.Fatalf("Dropped = %d, want the cold pair's 1 conflict", m.Dropped)
	}
}

func TestMatrixRankingIsDeterministic(t *testing.T) {
	build := func() *Matrix {
		a, _ := NewAnalyzer("bimodal", 16)
		for i := 0; i < 3; i++ {
			a.Branch(0x1000, true)
			a.Branch(0x1000+64*4, false)
			a.Branch(0x2000, true)
			a.Branch(0x2000+64*4, false)
		}
		return a.Matrix(4)
	}
	m1, m2 := build(), build()
	if len(m1.PCs) != len(m2.PCs) {
		t.Fatal("nondeterministic PC set size")
	}
	for i := range m1.PCs {
		if m1.PCs[i] != m2.PCs[i] {
			t.Fatalf("ranking order differs: %v vs %v", m1.PCs, m2.PCs)
		}
	}
}
