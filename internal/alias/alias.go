// Package alias analyzes predictor-table interference at the branch-pair
// level: which branches share entries, how often, and whether the sharing
// partners agree (constructive) or oppose each other (destructive).
//
// The paper measures collisions as scalar counts; this package answers the
// follow-up question its future-work section raises — *which* branches to
// statically predict to kill destructive interference — by attributing every
// conflict to an (aggressor, victim) pair. The StaticCol selector uses the
// per-branch aggregation; the bpalias tool prints the pair ranking.
//
// The analyzer models the index function of the simple single-table schemes
// (bimodal, ghist, gshare) directly, rather than instrumenting a live
// predictor: interference is a property of the indexing, not of counter
// dynamics, and modelling it separately lets one analysis pass serve any
// table size.
package alias

import (
	"fmt"
	"sort"
	"strings"

	"branchsim/internal/predictor"
)

// Pair is one ordered interference pair: Victim looked up an entry last
// touched by Aggressor.
type Pair struct {
	Victim    uint64
	Aggressor uint64
	// Count is how many times this pair conflicted.
	Count uint64
	// Opposed counts conflicts in which the two branches' running
	// majority directions disagreed — the destructive kind.
	Opposed uint64
}

// Analyzer is a trace Recorder that builds the interference graph of one
// indexing scheme over one run.
type Analyzer struct {
	scheme  string
	entries int
	histLen int

	owners []uint64 // last PC per entry (0 = untouched)
	hist   uint64

	// per-branch running direction counts, to classify opposition
	execs map[uint64]uint64
	takes map[uint64]uint64

	pairs    map[[2]uint64]*Pair
	overflow uint64 // conflicts dropped after maxPairs distinct pairs

	Conflicts uint64 // total cross-branch conflicts observed
	Branches  uint64
}

// maxPairs bounds the pair map; workloads here stay far below it, but a
// pathological stream must not exhaust memory.
const maxPairs = 1 << 20

// NewAnalyzer builds an analyzer for scheme ("bimodal", "ghist" or
// "gshare") with a table of sizeBytes of 2-bit counters, mirroring the
// predictor's own geometry.
func NewAnalyzer(scheme string, sizeBytes int) (*Analyzer, error) {
	scheme = strings.ToLower(scheme)
	switch scheme {
	case "bimodal", "ghist", "gshare":
	default:
		return nil, fmt.Errorf("alias: unsupported scheme %q (want bimodal, ghist or gshare)", scheme)
	}
	entries := 1
	for entries*2 <= sizeBytes*4 {
		entries *= 2
	}
	histLen := 0
	if scheme != "bimodal" {
		histLen = log2i(entries)
	}
	return &Analyzer{
		scheme:  scheme,
		entries: entries,
		histLen: histLen,
		owners:  make([]uint64, entries),
		execs:   map[uint64]uint64{},
		takes:   map[uint64]uint64{},
		pairs:   map[[2]uint64]*Pair{},
	}, nil
}

func log2i(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Scheme reports the analyzed scheme and geometry.
func (a *Analyzer) Scheme() string {
	return fmt.Sprintf("%s:%s", a.scheme, predictor.FormatSize(a.entries/4))
}

func (a *Analyzer) index(pc uint64) uint64 {
	mask := uint64(a.entries - 1)
	h := a.hist
	if a.histLen < 64 {
		h &= (uint64(1) << a.histLen) - 1
	}
	switch a.scheme {
	case "bimodal":
		return (pc >> 2) & mask
	case "ghist":
		return h & mask
	default: // gshare
		return ((pc >> 2) ^ h) & mask
	}
}

// Branch implements trace.Recorder.
func (a *Analyzer) Branch(pc uint64, taken bool) {
	a.Branches++
	idx := a.index(pc)
	owner := a.owners[idx]
	if owner != 0 && owner != pc {
		a.Conflicts++
		key := [2]uint64{pc, owner}
		p := a.pairs[key]
		if p == nil {
			if len(a.pairs) >= maxPairs {
				a.overflow++
			} else {
				p = &Pair{Victim: pc, Aggressor: owner}
				a.pairs[key] = p
			}
		}
		if p != nil {
			p.Count++
			if a.majorityTaken(pc, taken) != a.majorityTaken(owner, false) {
				p.Opposed++
			}
		}
	}
	a.owners[idx] = pc

	a.execs[pc]++
	if taken {
		a.takes[pc]++
	}
	if a.histLen > 0 {
		a.hist = a.hist<<1 | b2u(taken)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// majorityTaken returns the branch's running majority direction; for the
// victim the current outcome is the best prior, for unseen aggressors it
// defaults to taken.
func (a *Analyzer) majorityTaken(pc uint64, fallback bool) bool {
	e := a.execs[pc]
	if e == 0 {
		return fallback
	}
	return 2*a.takes[pc] >= e
}

// Ops implements trace.Recorder.
func (a *Analyzer) Ops(uint64) {}

// Dropped reports conflicts that could not be attributed because the pair
// map was full.
func (a *Analyzer) Dropped() uint64 { return a.overflow }

// TopPairs returns the n most frequent interference pairs, most conflicts
// first (ties broken by victim then aggressor PC for determinism).
func (a *Analyzer) TopPairs(n int) []Pair {
	out := make([]Pair, 0, len(a.pairs))
	for _, p := range a.pairs {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Victim != out[j].Victim {
			return out[i].Victim < out[j].Victim
		}
		return out[i].Aggressor < out[j].Aggressor
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// OpposedFraction is the fraction of attributed conflicts whose partners
// ran in opposite majority directions — a proxy for the destructive share.
func (a *Analyzer) OpposedFraction() float64 {
	var total, opposed uint64
	for _, p := range a.pairs {
		total += p.Count
		opposed += p.Opposed
	}
	if total == 0 {
		return 0
	}
	return float64(opposed) / float64(total)
}

// VictimTotals aggregates conflicts per victim branch, most-afflicted
// first. These are the natural candidates for static prediction under the
// paper's future-work selection idea.
func (a *Analyzer) VictimTotals() []Pair {
	agg := map[uint64]*Pair{}
	for _, p := range a.pairs {
		v := agg[p.Victim]
		if v == nil {
			v = &Pair{Victim: p.Victim}
			agg[p.Victim] = v
		}
		v.Count += p.Count
		v.Opposed += p.Opposed
	}
	out := make([]Pair, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Opposed != out[j].Opposed {
			return out[i].Opposed > out[j].Opposed
		}
		return out[i].Victim < out[j].Victim
	})
	return out
}

// Bias returns the observed taken-bias of a branch during the analysis.
func (a *Analyzer) Bias(pc uint64) float64 {
	e := a.execs[pc]
	if e == 0 {
		return 0
	}
	tb := float64(a.takes[pc]) / float64(e)
	if tb >= 0.5 {
		return tb
	}
	return 1 - tb
}
