// Package alias analyzes predictor-table interference at the branch-pair
// level: which branches share entries, how often, and whether the sharing
// partners agree (constructive) or oppose each other (destructive).
//
// The paper measures collisions as scalar counts; this package answers the
// follow-up question its future-work section raises — *which* branches to
// statically predict to kill destructive interference — by attributing every
// conflict to an (aggressor, victim) pair. The StaticCol selector uses the
// per-branch aggregation; the bpalias tool prints the pair ranking.
//
// The analyzer models the index functions of the predictor schemes directly,
// rather than instrumenting a live predictor: interference is a property of
// the indexing, not of counter dynamics, and modelling it separately lets
// one analysis pass serve any table size. The single-table schemes (bimodal,
// ghist, gshare) model one bank; the multi-bank schemes (tage, perceptron)
// model every bank with the geometry the predictor package would build for
// the same budget, attributing each conflict to the bank it happened in.
package alias

import (
	"fmt"
	"sort"
	"strings"

	"branchsim/internal/predictor"
)

// Pair is one ordered interference pair: Victim looked up an entry last
// touched by Aggressor.
type Pair struct {
	Victim    uint64
	Aggressor uint64
	// Count is how many times this pair conflicted.
	Count uint64
	// Opposed counts conflicts in which the two branches' running
	// majority directions disagreed — the destructive kind.
	Opposed uint64
}

// Bank is one modeled predictor table: its geometry, the last branch to
// touch each entry, and the conflicts attributed to it.
type Bank struct {
	// Name identifies the bank ("pht" for the single-table schemes, "base"
	// and "t4" … "t64" for tage, "weights" for perceptron).
	Name string
	// Entries is the bank's capacity; HistLen the history length its index
	// consumes (0 for history-free indexing).
	Entries int
	HistLen int
	// Conflicts counts cross-branch conflicts observed in this bank.
	Conflicts uint64

	mask   uint64
	owners []uint64 // last PC per entry (0 = untouched)
	index  func(pc, hist uint64) uint64
}

// Analyzer is a trace Recorder that builds the interference graph of one
// indexing scheme over one run.
type Analyzer struct {
	scheme    string
	schemeStr string
	banks     []*Bank
	histLen   int // longest history any bank's index consumes

	hist uint64

	// per-branch running direction counts, to classify opposition
	execs map[uint64]uint64
	takes map[uint64]uint64

	pairs    map[[2]uint64]*Pair
	overflow uint64 // conflicts dropped after maxPairs distinct pairs

	Conflicts uint64 // total cross-branch conflicts observed, all banks
	Lookups   uint64 // total bank lookups (Branches × bank count)
	Branches  uint64
}

// maxPairs bounds the pair map; workloads here stay far below it, but a
// pathological stream must not exhaust memory.
const maxPairs = 1 << 20

// foldHist compresses hl bits of history into width bits by xor-folding,
// mirroring the predictor package's tagged-component indexing.
func foldHist(hist uint64, hl, width int) uint64 {
	if width <= 0 {
		return 0
	}
	h := hist
	if hl < 64 {
		h &= (uint64(1) << hl) - 1
	}
	var out uint64
	for hl > 0 {
		out ^= h & ((uint64(1) << width) - 1)
		h >>= width
		hl -= width
	}
	return out
}

// tageAliasHistLens mirrors the predictor package's geometric history
// lengths for the tagged components.
var tageAliasHistLens = []int{4, 8, 16, 32, 64}

// NewAnalyzer builds an analyzer for scheme ("bimodal", "ghist", "gshare",
// "tage" or "perceptron") with sizeBytes of predictor storage, mirroring
// the predictor package's own geometry for that budget.
func NewAnalyzer(scheme string, sizeBytes int) (*Analyzer, error) {
	scheme = strings.ToLower(scheme)
	a := &Analyzer{
		scheme: scheme,
		execs:  map[uint64]uint64{},
		takes:  map[uint64]uint64{},
		pairs:  map[[2]uint64]*Pair{},
	}
	counters2b := func(bytes int) int { // power-of-two 2-bit counters in bytes
		if bytes < 1 {
			bytes = 1
		}
		e := 1
		for e*2 <= bytes*4 {
			e *= 2
		}
		return e
	}
	switch scheme {
	case "bimodal", "ghist", "gshare":
		entries := counters2b(sizeBytes)
		histLen := 0
		if scheme != "bimodal" {
			histLen = log2i(entries)
		}
		b := &Bank{Name: "pht", Entries: entries, HistLen: histLen, mask: uint64(entries - 1)}
		switch scheme {
		case "bimodal":
			b.index = func(pc, _ uint64) uint64 { return pc >> 2 }
		case "ghist":
			b.index = func(_, h uint64) uint64 { return h }
		default: // gshare
			b.index = func(pc, h uint64) uint64 { return (pc >> 2) ^ h }
		}
		a.banks = []*Bank{b}
		a.schemeStr = fmt.Sprintf("%s:%s", scheme, predictor.FormatSize(entries/4))
	case "tage":
		// Mirror predictor.NewTAGE: the base bimodal gets a quarter of the
		// budget; the rest splits evenly across the tagged components, each
		// entry costing 3+2+tagBits bits.
		baseBudget := sizeBytes / 4
		if baseBudget < 1 {
			baseBudget = 1
		}
		baseEntries := counters2b(baseBudget)
		base := &Bank{Name: "base", Entries: baseEntries, mask: uint64(baseEntries - 1)}
		base.index = func(pc, _ uint64) uint64 { return pc >> 2 }
		a.banks = []*Bank{base}
		perComp := (sizeBytes - baseBudget) / len(tageAliasHistLens)
		for i, hl := range tageAliasHistLens {
			tagBits := 7 + i
			entryBits := 3 + 2 + tagBits
			e := 2
			for e*2*entryBits <= perComp*8 {
				e *= 2
			}
			w := log2i(e)
			hl := hl
			b := &Bank{
				Name:    fmt.Sprintf("t%d", hl),
				Entries: e,
				HistLen: hl,
				mask:    uint64(e - 1),
			}
			b.index = func(pc, h uint64) uint64 {
				x := pc >> 2
				return x ^ (x >> uint(w)) ^ foldHist(h, hl, w)
			}
			a.banks = append(a.banks, b)
		}
		a.schemeStr = fmt.Sprintf("%s:%s", scheme, predictor.FormatSize(sizeBytes))
	case "perceptron":
		// Mirror predictor.NewPerceptron: 31-bit history, 8-bit weights,
		// one vector of histLen+1 weights per entry. The index hashes the
		// PC only, so perceptron interference is history-free.
		const histLen = 31
		perEntryBits := (histLen + 1) * 8
		e := 2
		for e*2*perEntryBits <= sizeBytes*8 {
			e *= 2
		}
		b := &Bank{Name: "weights", Entries: e, mask: uint64(e - 1)}
		b.index = func(pc, _ uint64) uint64 {
			x := pc >> 2
			return x ^ (x >> 9)
		}
		a.banks = []*Bank{b}
		a.schemeStr = fmt.Sprintf("%s:%s", scheme, predictor.FormatSize(sizeBytes))
	default:
		return nil, fmt.Errorf("alias: unsupported scheme %q (want bimodal, ghist, gshare, tage or perceptron)", scheme)
	}
	for _, b := range a.banks {
		b.owners = make([]uint64, b.Entries)
		if b.HistLen > a.histLen {
			a.histLen = b.HistLen
		}
	}
	return a, nil
}

func log2i(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Scheme reports the analyzed scheme and geometry.
func (a *Analyzer) Scheme() string { return a.schemeStr }

// Banks exposes the per-bank view of the analysis: geometry and conflict
// attribution for each modeled table, base-first.
func (a *Analyzer) Banks() []*Bank { return a.banks }

// Branch implements trace.Recorder.
func (a *Analyzer) Branch(pc uint64, taken bool) {
	a.Branches++
	for _, b := range a.banks {
		a.Lookups++
		h := a.hist
		if b.HistLen < 64 {
			h &= (uint64(1) << b.HistLen) - 1
		}
		idx := b.index(pc, h) & b.mask
		owner := b.owners[idx]
		if owner != 0 && owner != pc {
			a.Conflicts++
			b.Conflicts++
			key := [2]uint64{pc, owner}
			p := a.pairs[key]
			if p == nil {
				if len(a.pairs) >= maxPairs {
					a.overflow++
				} else {
					p = &Pair{Victim: pc, Aggressor: owner}
					a.pairs[key] = p
				}
			}
			if p != nil {
				p.Count++
				if a.majorityTaken(pc, taken) != a.majorityTaken(owner, false) {
					p.Opposed++
				}
			}
		}
		b.owners[idx] = pc
	}

	a.execs[pc]++
	if taken {
		a.takes[pc]++
	}
	if a.histLen > 0 {
		a.hist = a.hist<<1 | b2u(taken)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// majorityTaken returns the branch's running majority direction; for the
// victim the current outcome is the best prior, for unseen aggressors it
// defaults to taken.
func (a *Analyzer) majorityTaken(pc uint64, fallback bool) bool {
	e := a.execs[pc]
	if e == 0 {
		return fallback
	}
	return 2*a.takes[pc] >= e
}

// Ops implements trace.Recorder.
func (a *Analyzer) Ops(uint64) {}

// Dropped reports conflicts that could not be attributed because the pair
// map was full.
func (a *Analyzer) Dropped() uint64 { return a.overflow }

// TopPairs returns the n most frequent interference pairs, most conflicts
// first (ties broken by victim then aggressor PC for determinism).
func (a *Analyzer) TopPairs(n int) []Pair {
	out := make([]Pair, 0, len(a.pairs))
	for _, p := range a.pairs {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Victim != out[j].Victim {
			return out[i].Victim < out[j].Victim
		}
		return out[i].Aggressor < out[j].Aggressor
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// OpposedFraction is the fraction of attributed conflicts whose partners
// ran in opposite majority directions — a proxy for the destructive share.
func (a *Analyzer) OpposedFraction() float64 {
	var total, opposed uint64
	for _, p := range a.pairs {
		total += p.Count
		opposed += p.Opposed
	}
	if total == 0 {
		return 0
	}
	return float64(opposed) / float64(total)
}

// VictimTotals aggregates conflicts per victim branch, most-afflicted
// first. These are the natural candidates for static prediction under the
// paper's future-work selection idea.
func (a *Analyzer) VictimTotals() []Pair {
	agg := map[uint64]*Pair{}
	for _, p := range a.pairs {
		v := agg[p.Victim]
		if v == nil {
			v = &Pair{Victim: p.Victim}
			agg[p.Victim] = v
		}
		v.Count += p.Count
		v.Opposed += p.Opposed
	}
	out := make([]Pair, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Opposed != out[j].Opposed {
			return out[i].Opposed > out[j].Opposed
		}
		return out[i].Victim < out[j].Victim
	})
	return out
}

// Bias returns the observed taken-bias of a branch during the analysis.
func (a *Analyzer) Bias(pc uint64) float64 {
	e := a.execs[pc]
	if e == 0 {
		return 0
	}
	tb := float64(a.takes[pc]) / float64(e)
	if tb >= 0.5 {
		return tb
	}
	return 1 - tb
}
