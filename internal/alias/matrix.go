package alias

import (
	"fmt"
	"sort"
)

// Matrix is a dense victims×aggressors view of the interference graph,
// restricted to the most conflict-involved branches so it stays small enough
// to render as a heatmap. Rows are victims, columns aggressors; both axes
// share the same PC set (a hot branch usually plays both roles), ranked by
// total conflict involvement.
type Matrix struct {
	// PCs labels both axes, hottest branch first.
	PCs []uint64
	// Counts[v][a] is how often victim PCs[v] conflicted with aggressor
	// PCs[a]; Opposed counts the destructive subset (majority directions
	// disagreed).
	Counts  [][]uint64
	Opposed [][]uint64
	// Dropped counts conflicts attributed to pairs with at least one branch
	// outside the top-n set.
	Dropped uint64
}

// Matrix builds the conflict matrix over the n most conflict-involved
// branches (n <= 0 or n larger than the population means all of them).
func (a *Analyzer) Matrix(n int) *Matrix {
	involvement := map[uint64]uint64{}
	for _, p := range a.pairs {
		involvement[p.Victim] += p.Count
		involvement[p.Aggressor] += p.Count
	}
	pcs := make([]uint64, 0, len(involvement))
	for pc := range involvement {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		if involvement[pcs[i]] != involvement[pcs[j]] {
			return involvement[pcs[i]] > involvement[pcs[j]]
		}
		return pcs[i] < pcs[j]
	})
	if n > 0 && len(pcs) > n {
		pcs = pcs[:n]
	}

	idx := make(map[uint64]int, len(pcs))
	for i, pc := range pcs {
		idx[pc] = i
	}
	m := &Matrix{
		PCs:     pcs,
		Counts:  make([][]uint64, len(pcs)),
		Opposed: make([][]uint64, len(pcs)),
	}
	for i := range m.Counts {
		m.Counts[i] = make([]uint64, len(pcs))
		m.Opposed[i] = make([]uint64, len(pcs))
	}
	for _, p := range a.pairs {
		vi, okV := idx[p.Victim]
		ai, okA := idx[p.Aggressor]
		if !okV || !okA {
			m.Dropped += p.Count
			continue
		}
		m.Counts[vi][ai] += p.Count
		m.Opposed[vi][ai] += p.Opposed
	}
	return m
}

// Labels formats the matrix's PCs as hex axis labels.
func (m *Matrix) Labels() []string {
	out := make([]string, len(m.PCs))
	for i, pc := range m.PCs {
		out[i] = fmt.Sprintf("0x%x", pc)
	}
	return out
}
