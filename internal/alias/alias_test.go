package alias

import (
	"context"
	"testing"

	"branchsim/internal/workload"
)

func TestAnalyzerRejectsUnknownScheme(t *testing.T) {
	if _, err := NewAnalyzer("neural-net", 1024); err == nil {
		t.Fatal("unsupported scheme accepted")
	}
}

// TestTAGEBankGeometry: the tage model builds the same banks NewTAGE would
// for the budget — a base plus one component per geometric history length.
func TestTAGEBankGeometry(t *testing.T) {
	a, err := NewAnalyzer("tage", 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	banks := a.Banks()
	if len(banks) != 6 {
		t.Fatalf("got %d banks, want 6", len(banks))
	}
	if banks[0].Name != "base" || banks[0].HistLen != 0 {
		t.Errorf("bank 0 = %+v, want history-free base", banks[0])
	}
	wantHL := []int{4, 8, 16, 32, 64}
	for i, b := range banks[1:] {
		if b.HistLen != wantHL[i] {
			t.Errorf("bank %s: histLen %d, want %d", b.Name, b.HistLen, wantHL[i])
		}
		if b.Entries&(b.Entries-1) != 0 || b.Entries < 2 {
			t.Errorf("bank %s: %d entries, want a power of two >= 2", b.Name, b.Entries)
		}
	}
}

// TestTAGEMultiBankConflicts: two branches with equal low PC bits collide in
// the base bank; conflicts are attributed per bank and summed into the
// analyzer totals, with Lookups counting every bank probe.
func TestTAGEMultiBankConflicts(t *testing.T) {
	a, err := NewAnalyzer("tage", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	base := a.Banks()[0]
	pcA := uint64(0x1000)
	pcB := pcA + uint64(base.Entries)*4 // same base index
	for i := 0; i < 50; i++ {
		a.Branch(pcA, true)
		a.Branch(pcB, false)
	}
	if a.Lookups != a.Branches*uint64(len(a.Banks())) {
		t.Errorf("lookups = %d, want branches (%d) x banks (%d)", a.Lookups, a.Branches, len(a.Banks()))
	}
	if base.Conflicts == 0 {
		t.Error("no base-bank conflicts between branches sharing a base index")
	}
	var sum uint64
	for _, b := range a.Banks() {
		sum += b.Conflicts
	}
	if sum != a.Conflicts {
		t.Errorf("per-bank conflicts sum to %d, total says %d", sum, a.Conflicts)
	}
	if len(a.TopPairs(0)) == 0 {
		t.Error("no interference pairs attributed")
	}
}

// TestPerceptronHistoryFreeIndex: perceptron interference is a PC-hash
// property, so branches whose hashes differ never conflict regardless of
// history, and the model has exactly one bank.
func TestPerceptronHistoryFreeIndex(t *testing.T) {
	a, err := NewAnalyzer("perceptron", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Banks()) != 1 || a.Banks()[0].Name != "weights" {
		t.Fatalf("banks = %+v, want one weights bank", a.Banks())
	}
	b := a.Banks()[0]
	pcA := uint64(0x1000)
	pcB := pcA + uint64(b.Entries)*4<<9 // differs only above the hash fold
	for i := 0; i < 100; i++ {
		a.Branch(pcA, i%2 == 0)
		a.Branch(pcB, i%3 == 0)
	}
	// Same vector iff the hashes collide; either way totals must reconcile.
	if b.Conflicts != a.Conflicts {
		t.Errorf("single-bank conflicts %d != total %d", b.Conflicts, a.Conflicts)
	}
}

func TestBimodalConflictDetection(t *testing.T) {
	a, err := NewAnalyzer("bimodal", 16) // 64 entries
	if err != nil {
		t.Fatal(err)
	}
	pcA := uint64(0x1000)
	pcB := pcA + 64*4 // same bimodal index
	pcC := pcA + 4    // different index

	a.Branch(pcA, true)
	a.Branch(pcC, true) // no conflict
	a.Branch(pcB, false)
	a.Branch(pcA, true)

	if a.Conflicts != 2 {
		t.Fatalf("conflicts = %d, want 2 (B evicts A, A evicts B)", a.Conflicts)
	}
	pairs := a.TopPairs(0)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	// both conflicts are between opposite-direction branches
	for _, p := range pairs {
		if p.Opposed != p.Count {
			t.Fatalf("opposition not detected: %+v", p)
		}
	}
	if f := a.OpposedFraction(); f != 1 {
		t.Fatalf("opposed fraction = %v", f)
	}
}

func TestSameDirectionConflictIsNotOpposed(t *testing.T) {
	a, _ := NewAnalyzer("bimodal", 16)
	pcA, pcB := uint64(0x1000), uint64(0x1000+64*4)
	for i := 0; i < 4; i++ {
		a.Branch(pcA, true)
		a.Branch(pcB, true)
	}
	if a.Conflicts == 0 {
		t.Fatal("no conflicts on a shared entry")
	}
	if f := a.OpposedFraction(); f != 0 {
		t.Fatalf("same-direction conflicts marked opposed (%.2f)", f)
	}
}

func TestGshareHistorySpreadsConflicts(t *testing.T) {
	// With gshare indexing, one branch with varying history self-spreads;
	// cross-branch conflicts appear when histories align entries.
	a, _ := NewAnalyzer("gshare", 8) // 32 entries
	for i := 0; i < 4000; i++ {
		a.Branch(0x100, i%3 == 0)
		a.Branch(0x104, i%2 == 0)
		a.Branch(0x108, true)
	}
	if a.Conflicts == 0 {
		t.Fatal("no conflicts in a 32-entry gshare under three history-churning branches")
	}
	if len(a.TopPairs(0)) == 0 {
		t.Fatal("no pairs attributed")
	}
}

func TestVictimTotalsAggregates(t *testing.T) {
	a, _ := NewAnalyzer("bimodal", 16)
	pcA, pcB, pcC := uint64(0x1000), uint64(0x1000+64*4), uint64(0x1000+128*4)
	for i := 0; i < 3; i++ {
		a.Branch(pcA, true)
		a.Branch(pcB, false)
		a.Branch(pcC, false)
	}
	victims := a.VictimTotals()
	if len(victims) != 3 {
		t.Fatalf("victims = %v", victims)
	}
	var sum uint64
	for _, v := range victims {
		sum += v.Count
	}
	if sum != a.Conflicts {
		t.Fatalf("victim totals (%d) != conflicts (%d)", sum, a.Conflicts)
	}
}

func TestTopPairsDeterministicOrder(t *testing.T) {
	build := func() []Pair {
		a, _ := NewAnalyzer("bimodal", 8)
		for i := 0; i < 50; i++ {
			a.Branch(uint64(0x1000+(i%7)*32*4), i%2 == 0)
		}
		return a.TopPairs(5)
	}
	p1, p2 := build(), build()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair order not deterministic: %v vs %v", p1, p2)
		}
	}
}

func TestBiasTracking(t *testing.T) {
	a, _ := NewAnalyzer("bimodal", 1024)
	for i := 0; i < 10; i++ {
		a.Branch(0x40, i < 9)
	}
	if b := a.Bias(0x40); b < 0.89 || b > 0.91 {
		t.Fatalf("bias = %v, want 0.9", b)
	}
	if a.Bias(0x999) != 0 {
		t.Fatalf("unseen branch has bias")
	}
}

func TestAnalyzerOnRealWorkload(t *testing.T) {
	a, err := NewAnalyzer("gshare", 1024)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Get("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Run(context.Background(), workload.InputTest, a); err != nil {
		t.Fatal(err)
	}
	if a.Conflicts == 0 || len(a.TopPairs(10)) == 0 {
		t.Fatal("no interference found on gcc in a 4K-entry gshare")
	}
	if a.Dropped() != 0 {
		t.Fatalf("pair map overflowed on a small run: %d dropped", a.Dropped())
	}
	if f := a.OpposedFraction(); f <= 0 || f >= 1 {
		t.Fatalf("opposed fraction %v out of (0,1)", f)
	}
}
