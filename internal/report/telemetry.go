package report

import (
	"fmt"

	"branchsim/internal/obs"
)

// TopOffenders renders the worst-offender lists from top-K telemetry records
// as one table: for each arm, the n most-mispredicted branch sites with their
// execution profile and the sketch's error bound on the count. MaxError is
// the space-saving overestimate bound — the true count lies in
// [Count-MaxError, Count].
func TopOffenders(recs []obs.TopKRecord, n int) *Table {
	t := NewTable("Worst-offender branches",
		"ARM", "PC", "EXECS", "BIAS", "MISP RATE", "MISPREDICTS", "MAX ERR")
	for i := range recs {
		r := &recs[i]
		rows := r.TopMispredicted
		if n > 0 && len(rows) > n {
			rows = rows[:n]
		}
		for _, bc := range rows {
			t.AddRow(r.Key(),
				fmt.Sprintf("0x%x", bc.PC),
				fmt.Sprintf("%d", bc.Execs),
				F(bc.Bias, 3),
				Pct(bc.MispRate),
				fmt.Sprintf("%d", bc.Count),
				fmt.Sprintf("%d", bc.MaxError))
		}
		if r.SitesDropped > 0 {
			t.AddNote("%s: %d branch sites beyond the %d-site cap were not profiled",
				r.Key(), r.SitesDropped, r.Sites)
		}
	}
	t.AddNote("mispredict counts are space-saving sketch estimates; true count >= MISPREDICTS - MAX ERR")
	return t
}

// IntervalSummary condenses interval telemetry into one row per arm: how
// many intervals the run spanned, the totals reconstructed from the interval
// deltas, and the worst interval (peak MISPs/KI and where it happened).
func IntervalSummary(recs []obs.IntervalRecord) *Table {
	type arm struct {
		key       string
		intervals int
		instr     uint64
		branches  uint64
		misp      uint64
		peak      float64
		peakAt    uint64 // instruction boundary of the worst interval
	}
	byKey := map[string]*arm{}
	var order []*arm
	for i := range recs {
		r := &recs[i]
		a := byKey[r.Key()]
		if a == nil {
			a = &arm{key: r.Key()}
			byKey[r.Key()] = a
			order = append(order, a)
		}
		a.intervals++
		a.branches += r.DBranches
		a.misp += r.DMispredicts
		if r.Instructions > a.instr {
			a.instr = r.Instructions
		}
		if ki := r.MISPKI(); ki > a.peak {
			a.peak = ki
			a.peakAt = r.Instructions
		}
	}

	t := NewTable("Interval telemetry summary",
		"ARM", "INTERVALS", "INSTRUCTIONS", "BRANCHES", "MISP/KI", "PEAK MISP/KI", "PEAK AT")
	for _, a := range order {
		mispki := 0.0
		if a.instr > 0 {
			mispki = 1000 * float64(a.misp) / float64(a.instr)
		}
		t.AddRow(a.key,
			fmt.Sprintf("%d", a.intervals),
			fmt.Sprintf("%d", a.instr),
			fmt.Sprintf("%d", a.branches),
			F(mispki, 3),
			F(a.peak, 3),
			fmt.Sprintf("%d", a.peakAt))
	}
	return t
}

// ConfidenceSummary condenses confidence telemetry into one row per arm:
// the aggregate low-confidence prediction rate, the share of mispredictions
// that fell on low-confidence predictions (the cover a confidence-based
// static filter would get), and the interval where the low rate peaked.
func ConfidenceSummary(recs []obs.ConfidenceRecord) *Table {
	type arm struct {
		key               string
		intervals         int
		branches, low     uint64
		lowMisp, highMisp uint64
		peakLow           float64
		peakAt            uint64
	}
	byKey := map[string]*arm{}
	var order []*arm
	for i := range recs {
		r := &recs[i]
		a := byKey[r.Key()]
		if a == nil {
			a = &arm{key: r.Key()}
			byKey[r.Key()] = a
			order = append(order, a)
		}
		a.intervals++
		a.branches += r.DBranches
		a.low += r.DLow
		a.lowMisp += r.DLowMispredicts
		a.highMisp += r.DHighMispredicts
		if lr := r.LowRate(); lr > a.peakLow {
			a.peakLow = lr
			a.peakAt = r.Instructions
		}
	}

	t := NewTable("Confidence telemetry summary",
		"ARM", "INTERVALS", "BRANCHES", "LOW RATE", "LOW-CONF MISP SHARE", "PEAK LOW", "PEAK AT")
	for _, a := range order {
		lowRate := 0.0
		if a.branches > 0 {
			lowRate = float64(a.low) / float64(a.branches)
		}
		share := 0.0
		if m := a.lowMisp + a.highMisp; m > 0 {
			share = float64(a.lowMisp) / float64(m)
		}
		t.AddRow(a.key,
			fmt.Sprintf("%d", a.intervals),
			fmt.Sprintf("%d", a.branches),
			Pct(lowRate),
			Pct(share),
			Pct(a.peakLow),
			fmt.Sprintf("%d", a.peakAt))
	}
	t.AddNote("LOW-CONF MISP SHARE is the fraction of mispredictions a filter on low-confidence branches could reach")
	return t
}

// TaggedTableSummary renders the final tagged-bank sample of each arm — the
// stream counters are cumulative, so the last sample is the run's total —
// as one row per bank: occupancy, tag hit rate, provider share, and
// allocation churn.
func TaggedTableSummary(recs []obs.TaggedTableStatsRecord) *Table {
	last := map[string]*obs.TaggedTableStatsRecord{}
	var order []string
	for i := range recs {
		r := &recs[i]
		if _, ok := last[r.Key()]; !ok {
			order = append(order, r.Key())
		}
		last[r.Key()] = r
	}

	t := NewTable("Tagged-table introspection (final sample)",
		"ARM", "BANK", "ENTRIES", "OCCUPANCY", "TAG HIT", "PROVIDER", "ALT USED", "ALLOCS", "ALLOC FAILS")
	for _, key := range order {
		r := last[key]
		for _, b := range r.Banks {
			occ := 0.0
			if b.Entries > 0 {
				occ = float64(b.Occupied) / float64(b.Entries)
			}
			hit := "-"
			if lookups := b.Hits + b.Misses; lookups > 0 {
				hit = Pct(float64(b.Hits) / float64(lookups))
			}
			t.AddRow(key, b.Name,
				fmt.Sprintf("%d", b.Entries),
				Pct(occ),
				hit,
				fmt.Sprintf("%d", b.Provider),
				fmt.Sprintf("%d", b.AltUsed),
				fmt.Sprintf("%d", b.Allocs),
				fmt.Sprintf("%d", b.AllocFails))
		}
	}
	return t
}

// LowConfidenceOffenders renders the low-confidence top-K lists: for each
// arm, the n branch sites the predictor flagged unsure most often, with the
// per-site low-confidence fraction from the bounded site tracker.
func LowConfidenceOffenders(recs []obs.TopKRecord, n int) *Table {
	t := NewTable("Low-confidence branches",
		"ARM", "PC", "EXECS", "BIAS", "MISP RATE", "LOW RATE", "LOW COUNT", "MAX ERR")
	rows := 0
	for i := range recs {
		r := &recs[i]
		list := r.TopLowConfidence
		if n > 0 && len(list) > n {
			list = list[:n]
		}
		for _, bc := range list {
			rows++
			t.AddRow(r.Key(),
				fmt.Sprintf("0x%x", bc.PC),
				fmt.Sprintf("%d", bc.Execs),
				F(bc.Bias, 3),
				Pct(bc.MispRate),
				Pct(bc.LowRate),
				fmt.Sprintf("%d", bc.Count),
				fmt.Sprintf("%d", bc.MaxError))
		}
	}
	if rows == 0 {
		return nil
	}
	t.AddNote("low counts are space-saving sketch estimates; true count >= LOW COUNT - MAX ERR")
	return t
}
