package report

import (
	"fmt"

	"branchsim/internal/obs"
)

// TopOffenders renders the worst-offender lists from top-K telemetry records
// as one table: for each arm, the n most-mispredicted branch sites with their
// execution profile and the sketch's error bound on the count. MaxError is
// the space-saving overestimate bound — the true count lies in
// [Count-MaxError, Count].
func TopOffenders(recs []obs.TopKRecord, n int) *Table {
	t := NewTable("Worst-offender branches",
		"ARM", "PC", "EXECS", "BIAS", "MISP RATE", "MISPREDICTS", "MAX ERR")
	for i := range recs {
		r := &recs[i]
		rows := r.TopMispredicted
		if n > 0 && len(rows) > n {
			rows = rows[:n]
		}
		for _, bc := range rows {
			t.AddRow(r.Key(),
				fmt.Sprintf("0x%x", bc.PC),
				fmt.Sprintf("%d", bc.Execs),
				F(bc.Bias, 3),
				Pct(bc.MispRate),
				fmt.Sprintf("%d", bc.Count),
				fmt.Sprintf("%d", bc.MaxError))
		}
		if r.SitesDropped > 0 {
			t.AddNote("%s: %d branch sites beyond the %d-site cap were not profiled",
				r.Key(), r.SitesDropped, r.Sites)
		}
	}
	t.AddNote("mispredict counts are space-saving sketch estimates; true count >= MISPREDICTS - MAX ERR")
	return t
}

// IntervalSummary condenses interval telemetry into one row per arm: how
// many intervals the run spanned, the totals reconstructed from the interval
// deltas, and the worst interval (peak MISPs/KI and where it happened).
func IntervalSummary(recs []obs.IntervalRecord) *Table {
	type arm struct {
		key       string
		intervals int
		instr     uint64
		branches  uint64
		misp      uint64
		peak      float64
		peakAt    uint64 // instruction boundary of the worst interval
	}
	byKey := map[string]*arm{}
	var order []*arm
	for i := range recs {
		r := &recs[i]
		a := byKey[r.Key()]
		if a == nil {
			a = &arm{key: r.Key()}
			byKey[r.Key()] = a
			order = append(order, a)
		}
		a.intervals++
		a.branches += r.DBranches
		a.misp += r.DMispredicts
		if r.Instructions > a.instr {
			a.instr = r.Instructions
		}
		if ki := r.MISPKI(); ki > a.peak {
			a.peak = ki
			a.peakAt = r.Instructions
		}
	}

	t := NewTable("Interval telemetry summary",
		"ARM", "INTERVALS", "INSTRUCTIONS", "BRANCHES", "MISP/KI", "PEAK MISP/KI", "PEAK AT")
	for _, a := range order {
		mispki := 0.0
		if a.instr > 0 {
			mispki = 1000 * float64(a.misp) / float64(a.instr)
		}
		t.AddRow(a.key,
			fmt.Sprintf("%d", a.intervals),
			fmt.Sprintf("%d", a.instr),
			fmt.Sprintf("%d", a.branches),
			F(mispki, 3),
			F(a.peak, 3),
			fmt.Sprintf("%d", a.peakAt))
	}
	return t
}
