// Package report renders experiment results as aligned text tables and CSV,
// the two formats the bench harness and the bpexperiment tool emit.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular result table with a title and column
// headers. Cells are preformatted strings; numeric formatting is the
// producer's job so each experiment controls its own precision.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are free-form lines printed under the table (substitutions,
	// caveats, paper references).
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len([]rune(t.Title))))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, cell := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (headers first, no title).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a fraction as a percentage with one decimal, e.g. 0.153 →
// "15.3%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// PctDelta formats a relative improvement (positive = better) with one
// decimal and an explicit sign, matching the paper's Tables 3 and 4.
func PctDelta(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}
