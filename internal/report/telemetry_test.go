package report

import (
	"strings"
	"testing"

	"branchsim/internal/obs"
)

func TestTopOffenders(t *testing.T) {
	recs := []obs.TopKRecord{{
		Workload: "w", Input: "test", Predictor: "gshare:8KB",
		K: 4, Sites: 100, SitesDropped: 7,
		TopMispredicted: []obs.BranchCount{
			{PC: 0x4000, Count: 50, MaxError: 3, Execs: 60, Bias: 0.6, MispRate: 0.8},
			{PC: 0x4010, Count: 20, MaxError: 0, Execs: 200, Bias: 0.9, MispRate: 0.1},
			{PC: 0x4020, Count: 10, MaxError: 0, Execs: 90, Bias: 0.95, MispRate: 0.05},
		},
	}}
	tbl := TopOffenders(recs, 2)
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"0x4000", "0x4010", "w/test/gshare:8KB", "80.0%", "7 branch sites"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "0x4020") {
		t.Error("n=2 must truncate the offender list")
	}
}

func TestIntervalSummary(t *testing.T) {
	recs := []obs.IntervalRecord{
		{Workload: "w", Input: "test", Predictor: "bimodal:8KB",
			Seq: 0, Instructions: 1000, DInstructions: 1000, DBranches: 200, DMispredicts: 40},
		{Workload: "w", Input: "test", Predictor: "bimodal:8KB",
			Seq: 1, Instructions: 2000, DInstructions: 1000, DBranches: 200, DMispredicts: 10},
	}
	tbl := IntervalSummary(recs)
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// totals reconstructed from deltas: 50 misp over 2000 instr = 25 MISP/KI;
	// peak is interval 0 at 40 MISP/KI, sealed at instruction 1000.
	for _, want := range []string{"w/test/bimodal:8KB", "25.000", "40.000", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
