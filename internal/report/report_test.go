package report

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value")
	tb.AddRow("a", "1")
	tb.AddRow("longer", "22")
	tb.AddNote("a note")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(out, "\n")
	if lines[0] != "Demo" || lines[1] != "====" {
		t.Fatalf("title block wrong: %q %q", lines[0], lines[1])
	}
	// header and rows must align on the widest cell
	if !strings.HasPrefix(lines[2], "Name    Value") {
		t.Fatalf("header row = %q", lines[2])
	}
	if lines[4] != "a       1" {
		t.Fatalf("row = %q", lines[4])
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatalf("note missing:\n%s", out)
	}
	for _, ln := range lines {
		if strings.HasSuffix(ln, " ") {
			t.Fatalf("trailing spaces in %q", ln)
		}
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow("x")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n=") {
		t.Fatalf("empty title rendered a rule")
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := NewTable("t", "A", "B", "C")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("1", "plain")
	tb.AddRow("2", `has "quotes", commas`)
	tb.AddRow("3", "has\nnewline")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n1,plain\n2,\"has \"\"quotes\"\", commas\"\n3,\"has\nnewline\"\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.1234) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
	if PctDelta(0.05) != "+5.0%" || PctDelta(-0.021) != "-2.1%" {
		t.Errorf("PctDelta = %q / %q", PctDelta(0.05), PctDelta(-0.021))
	}
	if F(3.14159, 2) != "3.14" || F(2, 0) != "2" {
		t.Errorf("F formatting wrong")
	}
}

func TestUnicodeWidths(t *testing.T) {
	tb := NewTable("t", "Σ", "x")
	tb.AddRow("αβγ", "1")
	tb.AddRow("a", "2")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	// the second data row must pad "a" to the rune width of "αβγ" (3)
	if lines[5] != "a    2" {
		t.Fatalf("unicode alignment broken: %q", lines[5])
	}
}
