// Package spike models the profile-database workflow the paper proposes for
// production use (§5.1): a persistent store, named after Compaq's Spike
// binary optimizer, that accumulates branch profiles across many runs of a
// program, detects branches whose behaviour is unstable across inputs, and
// generates static hints only from the stable majority.
//
// Layout under the store directory:
//
//	<workload>/run-00001.json    profile of one instrumented run
//	<workload>/run-00002.json
//	...
//
// Each run is kept separately so stability is judged across *runs*, not
// against a single merged blob — merging first would hide a branch that is
// 95% taken on one input and 95% not-taken on another behind a bland 50%.
package spike

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"branchsim/internal/core"
	"branchsim/internal/profile"
)

// Store is a directory of accumulated profiles.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spike: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) workloadDir(workload string) string {
	return filepath.Join(s.dir, workload)
}

// Update records one run's profile for its workload.
func (s *Store) Update(db *profile.DB) error {
	if db.Workload == "" {
		return fmt.Errorf("spike: profile has no workload name")
	}
	wdir := s.workloadDir(db.Workload)
	if err := os.MkdirAll(wdir, 0o755); err != nil {
		return fmt.Errorf("spike: %w", err)
	}
	runs, err := s.runFiles(db.Workload)
	if err != nil {
		return err
	}
	path := filepath.Join(wdir, fmt.Sprintf("run-%05d.json", len(runs)+1))
	return db.SaveFile(path)
}

// runFiles lists the run profiles of a workload, oldest first.
func (s *Store) runFiles(workload string) ([]string, error) {
	entries, err := os.ReadDir(s.workloadDir(workload))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("spike: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "run-") && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, filepath.Join(s.workloadDir(workload), e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Runs loads all recorded run profiles of a workload, oldest first.
func (s *Store) Runs(workload string) ([]*profile.DB, error) {
	files, err := s.runFiles(workload)
	if err != nil {
		return nil, err
	}
	out := make([]*profile.DB, 0, len(files))
	for _, f := range files {
		db, err := profile.LoadFile(f)
		if err != nil {
			return nil, fmt.Errorf("spike: %s: %w", f, err)
		}
		out = append(out, db)
	}
	return out, nil
}

// Workloads lists workloads with at least one recorded run.
func (s *Store) Workloads() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("spike: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			files, err := s.runFiles(e.Name())
			if err != nil {
				return nil, err
			}
			if len(files) > 0 {
				out = append(out, e.Name())
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Merged returns the union profile of all recorded runs. Accuracy
// annotations survive only if every run profiled the same predictor.
func (s *Store) Merged(workload string) (*profile.DB, error) {
	runs, err := s.Runs(workload)
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("spike: no runs recorded for %q", workload)
	}
	merged := runs[0].Clone()
	for _, r := range runs[1:] {
		merged.Merge(r)
	}
	return merged, nil
}

// UnstableBranches returns the PCs whose taken-bias ranges more than
// maxDrift across the recorded runs (considering only runs that executed
// the branch).
func (s *Store) UnstableBranches(workload string, maxDrift float64) (map[uint64]bool, error) {
	runs, err := s.Runs(workload)
	if err != nil {
		return nil, err
	}
	lo := map[uint64]float64{}
	hi := map[uint64]float64{}
	for _, r := range runs {
		for _, b := range r.Branches() {
			tb := b.TakenBias()
			if cur, ok := lo[b.PC]; !ok || tb < cur {
				lo[b.PC] = tb
			}
			if cur, ok := hi[b.PC]; !ok || tb > cur {
				hi[b.PC] = tb
			}
		}
	}
	unstable := map[uint64]bool{}
	for pc := range lo {
		if hi[pc]-lo[pc] > maxDrift {
			unstable[pc] = true
		}
	}
	return unstable, nil
}

// SelectHints generates hints from the merged profile, excluding branches
// whose bias drifts more than maxDrift across runs — the paper's proposed
// production flow. With a single recorded run it degrades gracefully to
// plain selection.
func (s *Store) SelectHints(workload string, sel core.Selector, maxDrift float64) (*core.HintDB, int, error) {
	merged, err := s.Merged(workload)
	if err != nil {
		return nil, 0, err
	}
	unstable, err := s.UnstableBranches(workload, maxDrift)
	if err != nil {
		return nil, 0, err
	}
	for pc := range unstable {
		merged.Remove(pc)
	}
	hints, err := sel.Select(merged)
	if err != nil {
		return nil, 0, err
	}
	files, err := s.runFiles(workload)
	if err != nil {
		return nil, 0, err
	}
	hints.Profile = fmt.Sprintf("spike(%s, %d runs, %d unstable filtered at drift>%g%%)",
		workload, len(files), len(unstable), 100*maxDrift)
	return hints, len(unstable), nil
}
