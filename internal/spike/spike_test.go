package spike

import (
	"testing"

	"branchsim/internal/core"
	"branchsim/internal/profile"
)

// mkRun fabricates a run profile with given per-branch (pc, exec, taken).
func mkRun(workload, input string, rows [][3]uint64) *profile.DB {
	db := profile.NewDB(workload, input)
	for _, r := range rows {
		for i := uint64(0); i < r[1]; i++ {
			db.Record(r[0], i < r[2])
		}
	}
	return db
}

func TestUpdateAndRuns(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(mkRun("gcc", "a", [][3]uint64{{4, 10, 9}})); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(mkRun("gcc", "b", [][3]uint64{{4, 10, 10}})); err != nil {
		t.Fatal(err)
	}
	runs, err := s.Runs("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Input != "a" || runs[1].Input != "b" {
		t.Fatalf("runs = %v", runs)
	}
	wls, err := s.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != 1 || wls[0] != "gcc" {
		t.Fatalf("workloads = %v", wls)
	}
}

func TestUpdateRejectsAnonymousProfile(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Update(profile.NewDB("", "x")); err == nil {
		t.Fatal("anonymous profile accepted")
	}
}

func TestMergedAccumulates(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Update(mkRun("w", "a", [][3]uint64{{4, 10, 5}}))
	s.Update(mkRun("w", "b", [][3]uint64{{4, 10, 5}, {8, 4, 4}}))
	m, err := s.Merged("w")
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(4).Exec != 20 || m.Get(8).Exec != 4 {
		t.Fatalf("merged = %+v / %+v", m.Get(4), m.Get(8))
	}
}

func TestMergedEmptyStore(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, err := s.Merged("w"); err == nil {
		t.Fatal("empty store merged")
	}
}

func TestUnstableBranches(t *testing.T) {
	s, _ := Open(t.TempDir())
	// pc 4: stable at 90%; pc 8: 90% then 10%; pc 12: only in run one
	s.Update(mkRun("w", "a", [][3]uint64{{4, 10, 9}, {8, 10, 9}, {12, 10, 10}}))
	s.Update(mkRun("w", "b", [][3]uint64{{4, 10, 9}, {8, 10, 1}}))
	unstable, err := s.UnstableBranches("w", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(unstable) != 1 || !unstable[8] {
		t.Fatalf("unstable = %v, want {8}", unstable)
	}
}

func TestSelectHintsFiltersUnstable(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Update(mkRun("w", "a", [][3]uint64{{4, 100, 99}, {8, 100, 99}}))
	s.Update(mkRun("w", "b", [][3]uint64{{4, 100, 99}, {8, 100, 1}}))
	hints, removed, err := s.SelectHints("w", core.Static95{}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	if hints.Len() != 1 {
		t.Fatalf("hints = %v", hints.Hints())
	}
	if _, ok := hints.Lookup(4); !ok {
		t.Fatal("stable branch not hinted")
	}
	if _, ok := hints.Lookup(8); ok {
		t.Fatal("unstable branch hinted")
	}
}

func TestSelectHintsSingleRun(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Update(mkRun("w", "a", [][3]uint64{{4, 100, 99}}))
	hints, removed, err := s.SelectHints("w", core.Static95{}, 0.05)
	if err != nil || removed != 0 || hints.Len() != 1 {
		t.Fatalf("single-run selection: hints=%d removed=%d err=%v", hints.Len(), removed, err)
	}
}

func TestOpenAndDir(t *testing.T) {
	dir := t.TempDir() + "/nested/store"
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	// Open must fail when the path is unusable (a file in the way).
	if _, err := Open("/dev/null/impossible"); err == nil {
		t.Fatal("Open of an impossible path succeeded")
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir)
	s1.Update(mkRun("w", "a", [][3]uint64{{4, 10, 9}}))
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s2.Runs("w")
	if err != nil || len(runs) != 1 {
		t.Fatalf("reopened store lost runs: %v, %v", runs, err)
	}
}
