// Package cpi converts branch-prediction metrics into pipeline-level cost,
// the motivation in the paper's introduction: "as processor pipelines get
// increasingly deeper this performance degradation is becoming increasingly
// significant."
//
// The model is the standard first-order one: every committed instruction
// costs BaseCPI cycles, and every misprediction adds a flush penalty equal
// to the front-end depth (fetch-to-execute) plus an average resolution
// delay. It deliberately ignores overlap effects; the point is to rank
// predictor configurations by their pipeline cost, not to be a timing
// simulator.
package cpi

import (
	"fmt"

	"branchsim/internal/sim"
)

// Pipeline describes the machine the penalty is charged against.
type Pipeline struct {
	// Name labels the configuration ("EV6-like").
	Name string
	// BaseCPI is the no-misprediction cost per instruction.
	BaseCPI float64
	// MispredictPenalty is the cycles lost per branch misprediction
	// (flush depth + average resolve latency).
	MispredictPenalty float64
}

// Standard pipeline points. The EV6-like point matches the Alpha 21264 era
// the paper writes from; the deep point is the direction it warns about.
var (
	// Classic5 is a textbook 5-stage in-order pipeline.
	Classic5 = Pipeline{Name: "classic-5stage", BaseCPI: 1.0, MispredictPenalty: 3}
	// EV6 approximates the Alpha 21264: 7-stage fetch-to-issue, average
	// resolve a few stages later.
	EV6 = Pipeline{Name: "ev6-like", BaseCPI: 0.5, MispredictPenalty: 7}
	// Deep approximates a 2000s-era deep pipeline (P4-like).
	Deep = Pipeline{Name: "deep-20stage", BaseCPI: 0.35, MispredictPenalty: 20}
)

// Pipelines lists the standard points, shallowest first.
func Pipelines() []Pipeline { return []Pipeline{Classic5, EV6, Deep} }

// CPI returns the modelled cycles per instruction for a simulation result.
func (p Pipeline) CPI(m sim.Metrics) float64 {
	if m.Instructions == 0 {
		return 0
	}
	return p.BaseCPI + p.MispredictPenalty*float64(m.Mispredicts)/float64(m.Instructions)
}

// Speedup returns the relative execution-time improvement of measurement b
// over baseline a on this pipeline (positive = b is faster).
func (p Pipeline) Speedup(a, b sim.Metrics) float64 {
	ca, cb := p.CPI(a), p.CPI(b)
	if ca == 0 {
		return 0
	}
	return ca/cb - 1
}

// BranchPenaltyShare returns the fraction of modelled cycles spent on
// misprediction recovery.
func (p Pipeline) BranchPenaltyShare(m sim.Metrics) float64 {
	total := p.CPI(m)
	if total == 0 {
		return 0
	}
	return (total - p.BaseCPI) / total
}

// String implements fmt.Stringer.
func (p Pipeline) String() string {
	return fmt.Sprintf("%s (base %.2f CPI, %g-cycle flush)", p.Name, p.BaseCPI, p.MispredictPenalty)
}
