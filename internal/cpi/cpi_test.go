package cpi

import (
	"math"
	"strings"
	"testing"

	"branchsim/internal/sim"
	"branchsim/internal/trace"
)

func metrics(instr, mispred uint64) sim.Metrics {
	m := sim.Metrics{Mispredicts: mispred}
	m.Counts = trace.Counts{Instructions: instr, Branches: instr / 8}
	return m
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCPIFormula(t *testing.T) {
	p := Pipeline{BaseCPI: 1.0, MispredictPenalty: 10}
	// 1000 instructions, 5 mispredicts: 1.0 + 10*5/1000 = 1.05
	if got := p.CPI(metrics(1000, 5)); !almost(got, 1.05) {
		t.Fatalf("CPI = %v, want 1.05", got)
	}
	if p.CPI(metrics(0, 0)) != 0 {
		t.Fatalf("zero-instruction CPI must be 0")
	}
}

func TestPerfectPredictionHitsBase(t *testing.T) {
	for _, p := range Pipelines() {
		if got := p.CPI(metrics(1e6, 0)); !almost(got, p.BaseCPI) {
			t.Errorf("%s: perfect prediction CPI %v != base %v", p.Name, got, p.BaseCPI)
		}
	}
}

func TestDeeperPipelineHurtsMore(t *testing.T) {
	m := metrics(1000, 20)
	if EV6.CPI(m)-EV6.BaseCPI >= Deep.CPI(m)-Deep.BaseCPI {
		t.Fatalf("deep pipeline penalty not larger: ev6 %+v deep %+v", EV6.CPI(m), Deep.CPI(m))
	}
}

func TestSpeedup(t *testing.T) {
	p := Pipeline{BaseCPI: 1.0, MispredictPenalty: 10}
	base := metrics(1000, 100)  // CPI 2.0
	better := metrics(1000, 50) // CPI 1.5
	if got := p.Speedup(base, better); !almost(got, 2.0/1.5-1) {
		t.Fatalf("speedup = %v", got)
	}
	if p.Speedup(base, base) != 0 {
		t.Fatalf("self-speedup non-zero")
	}
}

func TestBranchPenaltyShare(t *testing.T) {
	p := Pipeline{BaseCPI: 1.0, MispredictPenalty: 10}
	m := metrics(1000, 100) // CPI 2.0, half of it penalty
	if got := p.BranchPenaltyShare(m); !almost(got, 0.5) {
		t.Fatalf("share = %v, want 0.5", got)
	}
}

func TestString(t *testing.T) {
	if !strings.Contains(EV6.String(), "ev6") {
		t.Fatalf("String() = %q", EV6.String())
	}
}
