// Package fsx is the pipeline's filesystem seam: a minimal os-shaped
// interface over exactly the operations the durable artifacts need —
// checkpoint records, run journals, trace spill files and quarantined
// chunks. Production code uses OS, the passthrough implementation; the
// faults package wraps any FS with deterministic disk-failure schedules
// (short writes, bit flips, ENOSPC, crash-at-Nth-write), which is how the
// crash-recovery kill matrix drives every write boundary of the pipeline
// without touching a real disk's failure modes.
//
// The interface is deliberately small. It is not an abstract filesystem
// (no directory iteration, no stat, no permissions model); anything a
// durability test does not need to perturb keeps calling the os package
// directly.
package fsx

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the os.File surface the durable writers use. Write appends,
// ReadAt serves replay cursors, Sync is the durability barrier.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Name() string
	Sync() error
}

// FS creates, renames and removes the files behind durable artifacts.
// Implementations must be safe for concurrent use, like the os package.
type FS interface {
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// CreateTemp creates a new temporary file in dir, os.CreateTemp-style.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the named file whole.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to the named file, creating it if necessary.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making preceding renames and
	// creates in it durable across power loss.
	SyncDir(path string) error
}

// OS is the passthrough FS backed by the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(path string) error { return SyncDir(path) }

// SyncDir fsyncs a directory through the real filesystem: after a rename
// into dir, SyncDir(dir) makes the new directory entry durable. Filesystems
// that cannot sync directories (some network mounts decline with EINVAL or
// ENOTSUP) make it a no-op — the rename is still atomic, just not yet
// durable, which matches the best the platform offers.
func SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			return nil
		}
		return serr
	}
	return cerr
}
