// Package telemetry collects simulation-domain observability: interval
// time-series of the simulator's metrics, predictor-table introspection
// samples, and streaming per-branch statistics with bounded worst-offender
// sketches. It is the layer that turns the paper's in-predictor analyses —
// destructive vs constructive aliasing, per-branch bias vs accuracy, PHT
// pressure — into journal records.
//
// A Collector is bound to exactly one simulation arm (one runner). It is
// fed per-event by the sim loop, seals an interval record every
// Config.Interval instructions, and buffers everything until Finish, when
// the records flow out through the obs journal in one deterministic batch.
// Records carry no wall-clock fields, so a given (workload, input,
// predictor) triple journals byte-identical telemetry on every run, at any
// replay worker count.
package telemetry

import (
	"math"

	"branchsim/internal/obs"
	"branchsim/internal/predictor"
)

// Default configuration values.
const (
	// DefaultInterval is the interval length in instructions (the tentpole's
	// "every N instructions", N defaulting to 100K).
	DefaultInterval = 100_000
	// DefaultTopK is the worst-offender list capacity.
	DefaultTopK = 16
	// DefaultSiteCap bounds the per-branch site tracker.
	DefaultSiteCap = 1 << 15
	// maxHistBucket caps the log-bucketed rate histograms.
	maxHistBucket = 32
)

// Config selects what a Collector gathers. The zero Config is fully
// disabled; see Enabled.
type Config struct {
	// Interval is the time-series interval length in instructions. 0 means
	// disabled unless another feature is on, in which case DefaultInterval
	// applies (table samples and top-K both piggyback on interval
	// boundaries).
	Interval uint64
	// TableStats samples predictor-table introspection (occupancy, counter
	// distribution, entropy, sharing degree) at interval boundaries. When
	// the predictor has tagged/neural banks (tage, perceptron) the same flag
	// also samples their per-bank tagged statistics.
	TableStats bool
	// Confidence collects the per-prediction confidence time series: one
	// ConfidenceRecord per interval plus the low-confidence top-K list, for
	// predictors that grade their own predictions (tage, perceptron).
	Confidence bool
	// TopK is the worst-offender list capacity; 0 disables the per-branch
	// tracker, negative means DefaultTopK.
	TopK int
	// SiteCap bounds the per-branch site map (0 means DefaultSiteCap). The
	// cap trades per-branch histogram completeness for bounded memory;
	// branches beyond it are counted in SitesDropped.
	SiteCap int
}

// Enabled reports whether the configuration collects anything at all.
func (c Config) Enabled() bool {
	return c.Interval > 0 || c.TableStats || c.Confidence || c.TopK != 0
}

// withDefaults resolves the zero values of an enabled configuration.
func (c Config) withDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.TopK < 0 {
		c.TopK = DefaultTopK
	}
	if c.SiteCap <= 0 {
		c.SiteCap = DefaultSiteCap
	}
	return c
}

// site is one static branch's running profile.
type site struct {
	execs   uint64
	taken   uint64
	misp    uint64
	lowconf uint64
}

// Collector accumulates one arm's telemetry. Not safe for concurrent use —
// it belongs to the single goroutine driving the runner, like the runner
// itself. A nil *Collector is fully disabled; every method no-ops.
type Collector struct {
	cfg Config
	o   *obs.Observer

	workload, input, pred string
	tracked               bool // collision tracking on
	in                    predictor.Introspector
	tin                   predictor.TaggedIntrospector
	ce                    predictor.ConfidenceEstimator

	// Cumulative stream counters (instructions includes branches).
	instr, branches, taken uint64
	misp, col, cons, dest  uint64
	next                   uint64 // next interval boundary
	seq                    int

	// Cumulative confidence counters (ce bound): low-confidence predictions
	// and the low/high split of mispredictions, plus the score histogram
	// (eight equal-width buckets over [0,1]).
	confLow, confLowMisp, confHighMisp uint64
	scoreHist                          [8]uint64

	// prev* snapshot the cumulative counters at the last sealed boundary.
	pInstr, pBranches, pTaken  uint64
	pMisp, pCol, pCons, pDest  uint64
	pConfLow, pConfLM, pConfHM uint64
	pScoreHist                 [8]uint64

	// Per-branch tracking (TopK != 0).
	sites        map[uint64]*site
	sitesDropped uint64
	topDest      *spaceSaving
	topMisp      *spaceSaving
	topLow       *spaceSaving // nil unless confidence telemetry bound

	// Buffered records, emitted at Finish.
	intervals   []obs.IntervalRecord
	tableStats  []obs.TableStatsRecord
	taggedStats []obs.TaggedTableStatsRecord
	confidence  []obs.ConfidenceRecord
	topk        []obs.TopKRecord // 0 or 1 entries, built by Finish

	finished bool
}

// New builds a Collector for one arm. Returns nil — the disabled collector —
// when cfg collects nothing, so callers thread the result unconditionally.
// o receives the records at Finish and live counter updates at each interval
// seal; a nil observer keeps the collector counting (the records are still
// retrievable from Finish's return) but journals nothing.
func New(cfg Config, o *obs.Observer) *Collector {
	cfg = cfg.withDefaults()
	if !cfg.Enabled() {
		return nil
	}
	c := &Collector{cfg: cfg, o: o, next: cfg.Interval}
	if cfg.TopK != 0 {
		c.sites = make(map[uint64]*site)
		c.topDest = newSpaceSaving(cfg.TopK)
		c.topMisp = newSpaceSaving(cfg.TopK)
	}
	return c
}

// Config returns the collector's resolved configuration (zero for nil).
func (c *Collector) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// Bind attaches the collector to its arm: labels for the records, the
// predictor (introspected at interval boundaries when the configuration asks
// for table stats and the predictor supports it), and whether the arm
// tracks collisions. Call once, before the stream starts. Safe on nil.
func (c *Collector) Bind(p predictor.Predictor, workload, input, pred string, tracked bool) {
	if c == nil {
		return
	}
	c.workload, c.input, c.pred, c.tracked = workload, input, pred, tracked
	if c.cfg.TableStats {
		if in, ok := p.(predictor.Introspector); ok {
			in.EnableTableStats()
			c.in = in
		}
		if tin, ok := p.(predictor.TaggedIntrospector); ok {
			tin.EnableTableStats()
			// Wrappers pass IntrospectTagged through and return nil banks
			// when the inner predictor has none; only wire the sampler when
			// there is something to sample (the bank set is structural, so a
			// cold predictor still reports its banks).
			if len(tin.IntrospectTagged()) > 0 {
				c.tin = tin
			}
		}
	}
	if c.cfg.Confidence {
		if ce, ok := predictor.ConfidenceEstimatorOf(p); ok {
			c.ce = ce
			if c.sites != nil {
				c.topLow = newSpaceSaving(c.cfg.TopK)
			}
		}
	}
}

// TableSampling reports whether the collector introspects predictor tables
// at interval boundaries (TableStats configured and the bound predictor
// supports it). Callers batching the event stream must fall back to
// per-event feeding when this is true: a boundary seal snapshots the live
// tables, so the predictor may not run ahead of the collector. Safe on nil.
func (c *Collector) TableSampling() bool { return c != nil && (c.in != nil || c.tin != nil) }

// ConfidenceSampling reports whether the collector grades every prediction
// (Confidence configured and the bound predictor estimates it). Callers
// batching the event stream must fall back to per-event feeding when this is
// true: Branch queries the predictor's last-prediction state, so the
// predictor may not run ahead of the collector. Safe on nil.
func (c *Collector) ConfidenceSampling() bool { return c != nil && c.ce != nil }

// Branch feeds one dynamic branch: its resolved direction, whether the
// prediction was correct, and whether the lookup collided (false when the
// arm does not track collisions). Safe on nil.
func (c *Collector) Branch(pc uint64, taken, correct, collided bool) {
	if c == nil {
		return
	}
	c.instr++
	c.branches++
	if taken {
		c.taken++
	}
	destructive := false
	if !correct {
		c.misp++
	}
	if collided {
		c.col++
		if correct {
			c.cons++
		} else {
			c.dest++
			destructive = true
		}
	}
	low := false
	if c.ce != nil {
		conf := c.ce.LastConfidence()
		low = conf.Low
		if low {
			c.confLow++
			if !correct {
				c.confLowMisp++
			}
		} else if !correct {
			c.confHighMisp++
		}
		b := int(conf.Score * 8)
		if b > 7 {
			b = 7
		} else if b < 0 {
			b = 0
		}
		c.scoreHist[b]++
	}
	if c.sites != nil {
		s := c.sites[pc]
		if s == nil {
			if len(c.sites) >= c.cfg.SiteCap {
				c.sitesDropped++
			} else {
				s = &site{}
				c.sites[pc] = s
			}
		}
		if s != nil {
			s.execs++
			if taken {
				s.taken++
			}
			if !correct {
				s.misp++
				c.topMisp.Add(pc)
			}
			if low {
				s.lowconf++
			}
		}
		if destructive {
			c.topDest.Add(pc)
		}
		if low && c.topLow != nil {
			c.topLow.Add(pc)
		}
	}
	if c.instr >= c.next {
		c.seal()
	}
}

// Ops charges n straight-line instructions. A run that crosses one or more
// interval boundaries seals exactly at each boundary — the records are the
// same as if the run were charged one instruction at a time, so seal points
// cannot depend on how the recording pipeline batches straight-line runs
// (the raw workload stream, the capture tee, decoded chunks and the block
// kernels all coalesce Ops differently). Safe on nil.
func (c *Collector) Ops(n uint64) {
	if c == nil {
		return
	}
	c.instr += n
	for c.instr >= c.next {
		total := c.instr
		c.instr = c.next
		c.seal()
		c.instr = total
	}
}

// seal closes the current interval: one IntervalRecord with the deltas since
// the previous boundary and, when enabled, one table-introspection sample.
// Ops clamps c.instr to the boundary before calling, so every mid-stream
// seal lands on an exact Interval multiple; only the final partial seal from
// Finish can land between boundaries.
func (c *Collector) seal() {
	rec := obs.IntervalRecord{
		Workload: c.workload, Input: c.input, Predictor: c.pred,
		Seq: c.seq, Instructions: c.instr,
		DInstructions: c.instr - c.pInstr,
		DBranches:     c.branches - c.pBranches,
		DTaken:        c.taken - c.pTaken,
		DMispredicts:  c.misp - c.pMisp,
	}
	if c.tracked {
		rec.CollisionsTracked = true
		rec.DCollisions = c.col - c.pCol
		rec.DConstructive = c.cons - c.pCons
		rec.DDestructive = c.dest - c.pDest
	}
	c.intervals = append(c.intervals, rec)
	c.o.Counter(obs.MTelemetryIntervals).Add(1)
	// Live tap: mirror a copy to the event bus now, at seal time. The
	// buffered copy above still flows through the journal at Finish, so
	// journal bytes are identical with or without live subscribers.
	live := rec
	c.o.Publish(&live)

	if c.in != nil {
		tables := c.in.Introspect()
		ts := obs.TableStatsRecord{
			Workload: c.workload, Input: c.input, Predictor: c.pred,
			Seq: c.seq, Instructions: c.instr,
			Tables: make([]obs.TableStat, 0, len(tables)),
		}
		for _, t := range tables {
			ts.Tables = append(ts.Tables, obs.TableStat{
				Name:        t.Name,
				Entries:     t.Entries,
				Occupied:    t.Occupied,
				Counters:    t.Counters,
				Entropy:     t.Entropy,
				SharingHist: t.SharingHist,
			})
		}
		c.tableStats = append(c.tableStats, ts)
		c.o.Counter(obs.MTelemetryTableSamples).Add(1)
		liveTS := ts
		c.o.Publish(&liveTS)
	}

	if c.tin != nil {
		banks := c.tin.IntrospectTagged()
		ts := obs.TaggedTableStatsRecord{
			Workload: c.workload, Input: c.input, Predictor: c.pred,
			Seq: c.seq, Instructions: c.instr,
			Banks: make([]obs.TaggedBankStat, 0, len(banks)),
		}
		for _, b := range banks {
			ts.Banks = append(ts.Banks, obs.TaggedBankStat{
				Name:       b.Name,
				Entries:    b.Entries,
				HistLen:    b.HistLen,
				TagBits:    b.TagBits,
				Occupied:   b.Occupied,
				Ctr:        b.Ctr,
				Useful:     b.Useful,
				Saturated:  b.Saturated,
				Margin:     b.Margin,
				Hits:       b.Hits,
				Misses:     b.Misses,
				Provider:   b.Provider,
				AltUsed:    b.AltUsed,
				Allocs:     b.Allocs,
				AllocFails: b.AllocFails,
			})
		}
		c.taggedStats = append(c.taggedStats, ts)
		c.o.Counter(obs.MTelemetryTaggedSamples).Add(1)
		liveTS := ts
		c.o.Publish(&liveTS)
	}

	if c.ce != nil {
		cr := obs.ConfidenceRecord{
			Workload: c.workload, Input: c.input, Predictor: c.pred,
			Seq: c.seq, Instructions: c.instr,
			DBranches:        c.branches - c.pBranches,
			DLow:             c.confLow - c.pConfLow,
			DLowMispredicts:  c.confLowMisp - c.pConfLM,
			DHighMispredicts: c.confHighMisp - c.pConfHM,
		}
		hist := make([]uint64, len(c.scoreHist))
		n := 0
		for i := range c.scoreHist {
			hist[i] = c.scoreHist[i] - c.pScoreHist[i]
			if hist[i] != 0 {
				n = i + 1
			}
		}
		if n > 0 {
			cr.ScoreHist = hist[:n]
		}
		c.confidence = append(c.confidence, cr)
		c.o.Counter(obs.MTelemetryConfidence).Add(1)
		liveCR := cr
		c.o.Publish(&liveCR)
	}

	c.pInstr, c.pBranches, c.pTaken = c.instr, c.branches, c.taken
	c.pMisp, c.pCol, c.pCons, c.pDest = c.misp, c.col, c.cons, c.dest
	c.pConfLow, c.pConfLM, c.pConfHM = c.confLow, c.confLowMisp, c.confHighMisp
	c.pScoreHist = c.scoreHist
	c.seq++
	c.next = (c.instr/c.cfg.Interval + 1) * c.cfg.Interval
}

// Records is everything a collector gathered, as returned by Finish.
type Records struct {
	Intervals   []obs.IntervalRecord
	TableStats  []obs.TableStatsRecord
	TaggedStats []obs.TaggedTableStatsRecord
	Confidence  []obs.ConfidenceRecord
	TopK        *obs.TopKRecord // nil when per-branch tracking is off
}

// Finish seals the final partial interval, builds the per-branch top-K
// record, emits everything to the bound observer's journal, and returns the
// records. Idempotent — later calls return the same records without
// re-emitting — and safe on nil (returns the zero Records).
func (c *Collector) Finish() Records {
	if c == nil {
		return Records{}
	}
	if !c.finished {
		c.finished = true
		if c.instr > c.pInstr || c.seq == 0 {
			c.seal()
		}
		for i := range c.intervals {
			c.o.Emit(&c.intervals[i])
		}
		for i := range c.tableStats {
			c.o.Emit(&c.tableStats[i])
		}
		for i := range c.taggedStats {
			c.o.Emit(&c.taggedStats[i])
		}
		for i := range c.confidence {
			c.o.Emit(&c.confidence[i])
		}
		if c.sites != nil {
			c.buildTopK()
		}
	}
	var top *obs.TopKRecord
	if len(c.topk) == 1 {
		top = &c.topk[0]
	}
	return Records{
		Intervals: c.intervals, TableStats: c.tableStats,
		TaggedStats: c.taggedStats, Confidence: c.confidence, TopK: top,
	}
}

// buildTopK assembles and emits the TopKRecord.
func (c *Collector) buildTopK() {
	rec := obs.TopKRecord{
		Workload: c.workload, Input: c.input, Predictor: c.pred,
		K:            c.cfg.TopK,
		Sites:        len(c.sites),
		SitesDropped: c.sitesDropped,
	}
	biasHist := make([]uint64, maxHistBucket+1)
	mispHist := make([]uint64, maxHistBucket+1)
	maxBias, maxMisp := 0, 0
	for _, s := range c.sites {
		if s.execs == 0 {
			continue
		}
		bias := float64(s.taken) / float64(s.execs)
		if bias < 0.5 {
			bias = 1 - bias
		}
		b := rateBucket(1 - bias)
		biasHist[b]++
		if b > maxBias {
			maxBias = b
		}
		m := rateBucket(float64(s.misp) / float64(s.execs))
		mispHist[m]++
		if m > maxMisp {
			maxMisp = m
		}
	}
	if len(c.sites) > 0 {
		rec.BiasHist = biasHist[:maxBias+1]
		rec.MispHist = mispHist[:maxMisp+1]
	}
	rec.TopDestructive = c.branchCounts(c.topDest, false)
	rec.TopMispredicted = c.branchCounts(c.topMisp, false)
	if c.topLow != nil {
		rec.TopLowConfidence = c.branchCounts(c.topLow, true)
	}
	c.topk = append(c.topk, rec)
	c.o.Emit(&c.topk[0])
	liveTop := rec
	c.o.Publish(&liveTop)
	c.o.Counter(obs.MTelemetryTopK).Add(1)
	c.o.Gauge(obs.MTelemetrySites).Set(int64(len(c.sites)))
	c.o.Counter(obs.MTelemetrySitesDropped).Add(c.sitesDropped)
}

// branchCounts converts a sketch's top list, joining each entry with its
// site profile when the site tracker still holds it. withLowRate adds the
// per-site low-confidence fraction (the TopLowConfidence list).
func (c *Collector) branchCounts(s *spaceSaving, withLowRate bool) []obs.BranchCount {
	top := s.Top(c.cfg.TopK)
	if len(top) == 0 {
		return nil
	}
	out := make([]obs.BranchCount, 0, len(top))
	for _, t := range top {
		bc := obs.BranchCount{PC: t.PC, Count: t.Count, MaxError: t.MaxError}
		if st := c.sites[t.PC]; st != nil && st.execs > 0 {
			bc.Execs = st.execs
			bias := float64(st.taken) / float64(st.execs)
			if bias < 0.5 {
				bias = 1 - bias
			}
			bc.Bias = bias
			bc.MispRate = float64(st.misp) / float64(st.execs)
			if withLowRate {
				bc.LowRate = float64(st.lowconf) / float64(st.execs)
			}
		}
		out = append(out, bc)
	}
	return out
}

// rateBucket maps a rate f ∈ [0,1] to its log₂ bucket: 0 for f = 0 (the
// perfect case), otherwise the bucket b ≥ 1 with 2⁻ᵇ ≤ f < 2⁻⁽ᵇ⁻¹⁾, capped
// at maxHistBucket.
func rateBucket(f float64) int {
	if f <= 0 {
		return 0
	}
	b := int(math.Ceil(-math.Log2(f)))
	if b < 1 {
		b = 1
	}
	if b > maxHistBucket {
		b = maxHistBucket
	}
	return b
}
