package telemetry

import (
	"bytes"
	"testing"

	"branchsim/internal/obs"
	"branchsim/internal/predictor"
)

func TestConfigDefaults(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if New(Config{}, nil) != nil {
		t.Fatal("disabled config built a collector")
	}
	c := New(Config{TableStats: true, TopK: -1}, nil)
	if c == nil {
		t.Fatal("enabled config built no collector")
	}
	got := c.Config()
	if got.Interval != DefaultInterval || got.TopK != DefaultTopK || got.SiteCap != DefaultSiteCap {
		t.Errorf("defaults = %+v", got)
	}
}

func TestNilCollectorNoops(t *testing.T) {
	var c *Collector
	c.Bind(nil, "w", "i", "p", false)
	c.Branch(0x40, true, true, false)
	c.Ops(10)
	if r := c.Finish(); r.Intervals != nil || r.TopK != nil {
		t.Fatalf("nil collector returned records: %+v", r)
	}
	if c.Config().Enabled() {
		t.Fatal("nil collector reports enabled config")
	}
}

// feed drives a deterministic synthetic stream: nSites branches round-robin,
// each branch taken unless its site index is divisible by 3, with opsPer
// straight-line instructions between branches.
func feed(c *Collector, events, nSites int, opsPer uint64) (branches, misp uint64) {
	for i := 0; i < events; i++ {
		site := i % nSites
		pc := 0x1000 + uint64(site)*4
		taken := site%3 != 0
		correct := i%7 != 0 // synthetic misprediction pattern
		collided := i%5 == 0
		c.Branch(pc, taken, correct, collided)
		branches++
		if !correct {
			misp++
		}
		c.Ops(opsPer)
	}
	return branches, misp
}

func TestIntervalDeltasReconstructTotals(t *testing.T) {
	var buf bytes.Buffer
	o := obs.New(obs.WithJournal(obs.NewJournal(&buf)))
	c := New(Config{Interval: 1000, TopK: 8}, o)
	c.Bind(predictor.NewBimodal(256), "w", "in", "bimodal:1KB", true)

	branches, misp := feed(c, 5000, 97, 3)
	recs := c.Finish()

	wantInstr := branches * 4 // 1 per branch + 3 ops each
	var dInstr, dBr, dMisp, dCol uint64
	lastSeq := -1
	for _, r := range recs.Intervals {
		if r.Seq != lastSeq+1 {
			t.Fatalf("interval seq %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		dInstr += r.DInstructions
		dBr += r.DBranches
		dMisp += r.DMispredicts
		dCol += r.DConstructive + r.DDestructive
		if !r.CollisionsTracked {
			t.Fatalf("interval %d lost the collisions-tracked flag", r.Seq)
		}
		if r.Instructions != dInstr {
			t.Fatalf("interval %d cumulative %d != running delta sum %d", r.Seq, r.Instructions, dInstr)
		}
	}
	if dInstr != wantInstr {
		t.Errorf("delta instructions sum = %d, want %d", dInstr, wantInstr)
	}
	if dBr != branches {
		t.Errorf("delta branches sum = %d, want %d", dBr, branches)
	}
	if dMisp != misp {
		t.Errorf("delta mispredicts sum = %d, want %d", dMisp, misp)
	}
	if r := recs.Intervals[0]; r.DInstructions < 1000 {
		t.Errorf("first interval closed after only %d instructions", r.DInstructions)
	}

	// Everything also landed in the journal, parseable.
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Intervals) != len(recs.Intervals) {
		t.Errorf("journal has %d intervals, collector returned %d", len(parsed.Intervals), len(recs.Intervals))
	}
	if len(parsed.TopK) != 1 {
		t.Fatalf("journal has %d topk records, want 1", len(parsed.TopK))
	}
}

func TestFinishIdempotent(t *testing.T) {
	var buf bytes.Buffer
	o := obs.New(obs.WithJournal(obs.NewJournal(&buf)))
	c := New(Config{Interval: 100}, o)
	c.Bind(predictor.NewBimodal(64), "w", "i", "p", false)
	feed(c, 500, 13, 0)
	first := c.Finish()
	second := c.Finish()
	if len(first.Intervals) != len(second.Intervals) {
		t.Fatalf("Finish not stable: %d vs %d intervals", len(first.Intervals), len(second.Intervals))
	}
	o.Close()
	parsed, err := obs.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Intervals) != len(first.Intervals) {
		t.Fatalf("double Finish re-emitted: journal %d vs %d", len(parsed.Intervals), len(first.Intervals))
	}
}

func TestTableStatsSampledAtBoundaries(t *testing.T) {
	c := New(Config{Interval: 1000, TableStats: true}, nil)
	p := predictor.NewGShare(1 << 10)
	c.Bind(p, "w", "i", "gshare:1KB", false)
	// Drive the predictor and the collector in lockstep, as the sim loop does.
	for i := 0; i < 3000; i++ {
		pc := 0x1000 + uint64(i%211)*4
		taken := i%3 != 0
		pred := p.Predict(pc)
		p.Update(pc, taken)
		c.Branch(pc, taken, pred == taken, false)
	}
	recs := c.Finish()
	if len(recs.TableStats) != len(recs.Intervals) {
		t.Fatalf("%d table samples for %d intervals", len(recs.TableStats), len(recs.Intervals))
	}
	for i, ts := range recs.TableStats {
		if ts.Seq != recs.Intervals[i].Seq || ts.Instructions != recs.Intervals[i].Instructions {
			t.Fatalf("sample %d not aligned with its interval", i)
		}
		if len(ts.Tables) != 1 || ts.Tables[0].Name != "pht" {
			t.Fatalf("sample %d tables = %+v", i, ts.Tables)
		}
		if ts.Tables[0].Occupied == 0 {
			t.Fatalf("sample %d shows empty table after training", i)
		}
	}
}

func TestTopKAndHistograms(t *testing.T) {
	c := New(Config{Interval: 10_000, TopK: 4, SiteCap: 8}, nil)
	c.Bind(predictor.NewBimodal(64), "w", "i", "p", true)
	// 16 sites with cap 8: half must be dropped.
	for i := 0; i < 4000; i++ {
		site := i % 16
		pc := 0x1000 + uint64(site)*4
		// site 0 mispredicts always and collides destructively: the clear
		// worst offender.
		correct := site != 0
		c.Branch(pc, true, correct, site == 0)
	}
	rec := c.Finish().TopK
	if rec == nil {
		t.Fatal("no topk record")
	}
	if rec.Sites != 8 {
		t.Errorf("sites = %d, want 8 (capped)", rec.Sites)
	}
	if rec.SitesDropped == 0 {
		t.Error("sites dropped = 0, want > 0")
	}
	if rec.K != 4 {
		t.Errorf("k = %d, want 4", rec.K)
	}
	if len(rec.TopMispredicted) == 0 || rec.TopMispredicted[0].PC != 0x1000 {
		t.Fatalf("top mispredicted = %+v, want site 0x1000 first", rec.TopMispredicted)
	}
	if len(rec.TopDestructive) == 0 || rec.TopDestructive[0].PC != 0x1000 {
		t.Fatalf("top destructive = %+v, want site 0x1000 first", rec.TopDestructive)
	}
	first := rec.TopMispredicted[0]
	if first.Execs == 0 || first.MispRate != 1 || first.Bias != 1 {
		t.Errorf("offender profile = %+v, want execs>0, misp rate 1, bias 1", first)
	}
	var histSites uint64
	for _, b := range rec.BiasHist {
		histSites += b
	}
	if histSites != uint64(rec.Sites) {
		t.Errorf("bias histogram sums to %d, want %d", histSites, rec.Sites)
	}
	// All tracked sites are always-taken: perfectly biased, bucket 0.
	if rec.BiasHist[0] != uint64(rec.Sites) {
		t.Errorf("bias histogram = %v, want all sites in bucket 0", rec.BiasHist)
	}
}

func TestRateBucket(t *testing.T) {
	cases := []struct {
		f    float64
		want int
	}{
		{0, 0}, {1, 1}, {0.5, 1}, {0.4, 2}, {0.25, 2}, {0.1, 4}, {1e-12, 40},
	}
	for _, tc := range cases {
		got := rateBucket(tc.f)
		want := tc.want
		if want > maxHistBucket {
			want = maxHistBucket
		}
		if got != want {
			t.Errorf("rateBucket(%v) = %d, want %d", tc.f, got, want)
		}
	}
}

// TestBulkOpsSealsPerBoundary pins the canonical seal rule: a straight-line
// run seals exactly at every interval boundary it crosses, as if charged one
// instruction at a time. This is what makes journals independent of how the
// recording pipeline batches Ops (raw workload stream vs capture tee vs
// decoded chunks vs block kernels coalesce the same gap differently).
func TestBulkOpsSealsPerBoundary(t *testing.T) {
	run := func(charge func(c *Collector)) Records {
		c := New(Config{Interval: 100}, nil)
		c.Bind(predictor.NewBimodal(64), "w", "i", "p", false)
		c.Branch(0x40, true, true, false)
		charge(c)
		c.Branch(0x44, true, true, false)
		return c.Finish()
	}

	recs := run(func(c *Collector) { c.Ops(10_000) })
	// Boundaries 100, 200, …, 10000 each seal, plus the final partial.
	if len(recs.Intervals) != 101 {
		t.Fatalf("got %d intervals, want 101 (one per crossed boundary + final partial)", len(recs.Intervals))
	}
	for i, r := range recs.Intervals[:100] {
		if want := uint64(100 * (i + 1)); r.Instructions != want {
			t.Fatalf("interval %d sealed at %d instructions, want the exact boundary %d", i, r.Instructions, want)
		}
	}
	var sum uint64
	for _, r := range recs.Intervals {
		sum += r.DInstructions
	}
	if sum != 10_002 {
		t.Errorf("delta sum = %d, want 10002", sum)
	}

	// The records are identical however the same run is split into Ops calls.
	singly := run(func(c *Collector) {
		for i := 0; i < 10_000; i++ {
			c.Ops(1)
		}
	})
	uneven := run(func(c *Collector) {
		c.Ops(99)
		c.Ops(1) // lands exactly on the first boundary
		c.Ops(151)
		c.Ops(9_749)
	})
	for name, got := range map[string]Records{"one-at-a-time": singly, "uneven splits": uneven} {
		if len(got.Intervals) != len(recs.Intervals) {
			t.Fatalf("%s: got %d intervals, want %d", name, len(got.Intervals), len(recs.Intervals))
		}
		for i := range got.Intervals {
			if got.Intervals[i] != recs.Intervals[i] {
				t.Errorf("%s: interval %d = %+v, want %+v", name, i, got.Intervals[i], recs.Intervals[i])
			}
		}
	}
}

func TestEmptyRunStillSealsOneInterval(t *testing.T) {
	c := New(Config{Interval: 100}, nil)
	c.Bind(predictor.NewBimodal(64), "w", "i", "p", false)
	recs := c.Finish()
	if len(recs.Intervals) != 1 {
		t.Fatalf("got %d intervals for an empty run, want 1", len(recs.Intervals))
	}
	if recs.Intervals[0].DInstructions != 0 {
		t.Errorf("empty run interval deltas = %+v", recs.Intervals[0])
	}
}
