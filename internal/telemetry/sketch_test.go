package telemetry

import (
	"testing"

	"branchsim/internal/xrand"
)

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := newSpaceSaving(8)
	counts := map[uint64]uint64{10: 5, 20: 3, 30: 7, 40: 1}
	for pc, n := range counts {
		for i := uint64(0); i < n; i++ {
			s.Add(pc)
		}
	}
	top := s.Top(0)
	if len(top) != len(counts) {
		t.Fatalf("tracked %d keys, want %d", len(top), len(counts))
	}
	for _, c := range top {
		if c.Count != counts[c.PC] {
			t.Errorf("pc %d: count %d, want %d", c.PC, c.Count, counts[c.PC])
		}
		if c.MaxError != 0 {
			t.Errorf("pc %d: max error %d under capacity, want 0", c.PC, c.MaxError)
		}
	}
	if top[0].PC != 30 || top[1].PC != 10 {
		t.Errorf("order = %v, want 30 then 10 first", top)
	}
}

func TestSpaceSavingHeavyHitterGuarantee(t *testing.T) {
	// One key takes 40% of a stream over many distinct keys; with k=16 the
	// space-saving guarantee (true count > N/k is always tracked) applies,
	// and the reported count must bracket the truth: true ≤ reported ≤
	// true + MaxError.
	const heavy, total = uint64(0xbeef), 10_000
	s := newSpaceSaving(16)
	rng := xrand.New(7)
	var heavyTrue uint64
	for i := 0; i < total; i++ {
		if rng.Bool(0.4) {
			s.Add(heavy)
			heavyTrue++
		} else {
			s.Add(uint64(rng.Intn(2000)))
		}
	}
	for _, c := range s.Top(0) {
		if c.PC == heavy {
			if c.Count < heavyTrue || c.Count > heavyTrue+c.MaxError {
				t.Fatalf("heavy hitter count %d (err %d) does not bracket true %d", c.Count, c.MaxError, heavyTrue)
			}
			return
		}
	}
	t.Fatal("heavy hitter fell out of the sketch")
}

func TestSpaceSavingBounded(t *testing.T) {
	s := newSpaceSaving(4)
	for i := uint64(0); i < 10_000; i++ {
		s.Add(i) // all distinct: worst case for the sketch
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if n := len(s.Top(2)); n != 2 {
		t.Fatalf("Top(2) returned %d entries", n)
	}
}

func TestSpaceSavingDeterministic(t *testing.T) {
	stream := func() *spaceSaving {
		s := newSpaceSaving(4)
		rng := xrand.New(42)
		for i := 0; i < 5000; i++ {
			s.Add(uint64(rng.Intn(64)))
		}
		return s
	}
	a, b := stream().Top(0), stream().Top(0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
