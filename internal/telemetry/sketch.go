package telemetry

import "sort"

// spaceSaving is the stream-summary (space-saving) heavy-hitters sketch of
// Metwally, Agrawal and El Abbadi: it tracks at most k keys in O(k) memory
// and guarantees that any key whose true count exceeds N/k (N = total
// increments) is present, with each reported count overestimating the truth
// by at most the item's err field. Updates are O(log k) via a min-heap over
// counts.
//
// The sketch is fully deterministic for a given increment sequence — the
// telemetry golden tests rely on that.
type spaceSaving struct {
	k     int
	items map[uint64]*ssItem
	heap  []*ssItem // min-heap ordered by (count, pc)
}

type ssItem struct {
	pc    uint64
	count uint64
	err   uint64 // max overestimation inherited at takeover
	idx   int    // heap index
}

func newSpaceSaving(k int) *spaceSaving {
	if k < 1 {
		k = 1
	}
	return &spaceSaving{k: k, items: make(map[uint64]*ssItem, k)}
}

// Add credits key pc with one occurrence.
func (s *spaceSaving) Add(pc uint64) {
	if it, ok := s.items[pc]; ok {
		it.count++
		s.down(it.idx)
		return
	}
	if len(s.heap) < s.k {
		it := &ssItem{pc: pc, count: 1, idx: len(s.heap)}
		s.items[pc] = it
		s.heap = append(s.heap, it)
		s.up(it.idx)
		return
	}
	// Full: the minimum-count item hands its slot (and its count, as the
	// new item's error bound) to the newcomer.
	it := s.heap[0]
	delete(s.items, it.pc)
	it.pc = pc
	it.err = it.count
	it.count++
	s.items[pc] = it
	s.down(0)
}

// Counted is one reported heavy hitter.
type Counted struct {
	PC       uint64
	Count    uint64
	MaxError uint64
}

// Top returns up to n tracked keys ordered by count descending, ties broken
// by ascending PC so the order is reproducible.
func (s *spaceSaving) Top(n int) []Counted {
	out := make([]Counted, 0, len(s.heap))
	for _, it := range s.heap {
		out = append(out, Counted{PC: it.pc, Count: it.count, MaxError: it.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Len returns the number of keys currently tracked.
func (s *spaceSaving) Len() int { return len(s.heap) }

// less orders heap items by (count, pc): a total order, so sift behaviour —
// and therefore which item is evicted on ties — is deterministic.
func (s *spaceSaving) less(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	if a.count != b.count {
		return a.count < b.count
	}
	return a.pc < b.pc
}

func (s *spaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].idx = i
	s.heap[j].idx = j
}

func (s *spaceSaving) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *spaceSaving) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.less(l, small) {
			small = l
		}
		if r < n && s.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		s.swap(i, small)
		i = small
	}
}
