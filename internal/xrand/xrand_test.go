package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestKnownStream(t *testing.T) {
	// Reference values for SplitMix64 with seed 0 (Vigna's test vectors
	// style): pin the stream so workload inputs never silently change.
	got := make([]uint64, 3)
	s := New(0)
	for i := range got {
		got[i] = s.Uint64()
	}
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream[%d] = %#x, want %#x (seed-0 reference)", i, got[i], want[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) fired %.3f of the time", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesFills(t *testing.T) {
	b := make([]byte, 37)
	New(3).Bytes(b)
	zero := 0
	for _, v := range b {
		if v == 0 {
			zero++
		}
	}
	if zero > 5 {
		t.Fatalf("%d of %d bytes are zero", zero, len(b))
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(42) != Hash64(42) {
		t.Fatalf("Hash64 not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatalf("Hash64(1) == Hash64(2)")
	}
}

func TestUint32UsesHighBits(t *testing.T) {
	a := New(9)
	b := New(9)
	if uint64(a.Uint32()) != b.Uint64()>>32 {
		t.Fatalf("Uint32 is not the high word of Uint64")
	}
}
