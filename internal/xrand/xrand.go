// Package xrand provides small, deterministic pseudo-random generators used
// by workload input generation and tests.
//
// The simulator must be bit-reproducible across runs and platforms, so
// workloads never use math/rand (whose stream is not guaranteed stable across
// Go releases). SplitMix64 is tiny, fast, well distributed, and fully
// specified by its seed.
package xrand

// SplitMix64 is a deterministic 64-bit PRNG (Steele, Lea, Flood 2014).
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// New returns a SplitMix64 seeded with seed.
func New(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the high 32 bits of the next value.
func (s *SplitMix64) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *SplitMix64) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills b with pseudo-random bytes.
func (s *SplitMix64) Bytes(b []byte) {
	for i := range b {
		if i%8 == 0 {
			v := s.Uint64()
			for j := 0; j < 8 && i+j < len(b); j++ {
				b[i+j] = byte(v >> (8 * j))
			}
		}
	}
}

// Hash64 mixes x through the SplitMix64 finalizer. It is a convenient
// stateless hash for index-scrambling in tests.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
