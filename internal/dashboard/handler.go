package dashboard

import (
	_ "embed"
	"encoding/json"
	"net/http"
	"strconv"

	"branchsim/internal/plot"
)

//go:embed ui.html
var uiHTML []byte

// Handler serves the dashboard over st:
//
//	/                   the embedded single-page UI
//	/api/state          JSON Snapshot (arm grid, progress, drop counters)
//	/api/tail?n=50      newest ingested JSONL lines, plain text
//	/api/traces         retained trace summaries (live daemon streams only)
//	/api/trace?id=X     one trace's span records, for the waterfall pane
//	/plot/intervals.svg?metric=mispki|accuracy|destructive
//	/plot/confidence.svg?metric=lowrate|lowmisp
//	/plot/heatmap.svg   destructive-aliasing heatmap (arms × intervals)
//
// Mount it at "/" (obs.WithRootHandler); chart SVGs are rendered
// server-side by internal/plot from the state's retained intervals.
func Handler(st *State) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(uiHTML)
	})
	mux.HandleFunc("/api/state", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(st.Snapshot())
	})
	mux.HandleFunc("/api/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(st.Traces())
	})
	mux.HandleFunc("/api/trace", func(w http.ResponseWriter, r *http.Request) {
		spans := st.Trace(r.URL.Query().Get("id"))
		if spans == nil {
			http.Error(w, "unknown trace", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(spans)
	})
	mux.HandleFunc("/api/tail", func(w http.ResponseWriter, r *http.Request) {
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		for _, line := range st.Tail(n) {
			_, _ = w.Write(line)
			_, _ = w.Write([]byte{'\n'})
		}
	})
	mux.HandleFunc("/plot/intervals.svg", func(w http.ResponseWriter, r *http.Request) {
		metric := plot.MetricMISPKI
		switch r.URL.Query().Get("metric") {
		case "", "mispki":
		case "accuracy":
			metric = plot.MetricAccuracy
		case "destructive":
			metric = plot.MetricDestructiveKI
		default:
			http.Error(w, "unknown metric (want mispki, accuracy or destructive)", http.StatusBadRequest)
			return
		}
		recs := st.Intervals()
		c, err := plot.IntervalCurves(metric.Name+" by interval", recs, metric)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml; charset=utf-8")
		_, _ = w.Write([]byte(c.SVG()))
	})
	mux.HandleFunc("/plot/confidence.svg", func(w http.ResponseWriter, r *http.Request) {
		metric := plot.MetricLowRate
		switch r.URL.Query().Get("metric") {
		case "", "lowrate":
		case "lowmisp":
			metric = plot.MetricLowMispShare
		default:
			http.Error(w, "unknown metric (want lowrate or lowmisp)", http.StatusBadRequest)
			return
		}
		recs := st.ConfidenceRecords()
		c, err := plot.ConfidenceCurves(metric.Name+" by interval", recs, metric)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml; charset=utf-8")
		_, _ = w.Write([]byte(c.SVG()))
	})
	mux.HandleFunc("/plot/heatmap.svg", func(w http.ResponseWriter, _ *http.Request) {
		h, err := aliasHeatmap(st.Intervals())
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml; charset=utf-8")
		_, _ = w.Write([]byte(h.SVG()))
	})
	return mux
}
