package dashboard

import (
	"fmt"
	"sort"

	"branchsim/internal/obs"
	"branchsim/internal/plot"
)

// aliasHeatmap renders the retained intervals as an arms × intervals matrix.
// When the stream tracks collisions the cell value is destructive
// collisions/KI — the paper's aliasing cost — otherwise it falls back to
// MISPs/KI so untracked runs still get a pressure map. Row keys follow the
// interval-curve convention: the predictor when every record shares one
// instruction stream, the full workload|input|predictor key otherwise.
func aliasHeatmap(recs []obs.IntervalRecord) (*plot.HeatmapChart, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("dashboard: no interval records yet")
	}
	sameStream, tracked := true, false
	for i := range recs {
		if recs[i].Workload != recs[0].Workload || recs[i].Input != recs[0].Input {
			sameStream = false
		}
		if recs[i].CollisionsTracked {
			tracked = true
		}
	}
	name := func(r *obs.IntervalRecord) string {
		if sameStream {
			return r.Predictor
		}
		return r.Key()
	}
	value := func(r *obs.IntervalRecord) float64 {
		if r.DInstructions == 0 {
			return 0
		}
		if tracked {
			return 1000 * float64(r.DDestructive) / float64(r.DInstructions)
		}
		return 1000 * float64(r.DMispredicts) / float64(r.DInstructions)
	}

	rowIdx := map[string]int{}
	var rows []string
	seqSet := map[int]struct{}{}
	for i := range recs {
		key := name(&recs[i])
		if _, ok := rowIdx[key]; !ok {
			rowIdx[key] = len(rows)
			rows = append(rows, key)
		}
		seqSet[recs[i].Seq] = struct{}{}
	}
	seqs := make([]int, 0, len(seqSet))
	for s := range seqSet {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	colIdx := map[int]int{}
	cols := make([]string, len(seqs))
	for i, s := range seqs {
		colIdx[s] = i
		cols[i] = fmt.Sprintf("#%d", s)
	}

	title := "destructive collisions/KI"
	if !tracked {
		title = "MISPs/KI"
	}
	h := plot.NewHeatmap(title+" (arms × intervals)", rows, cols)
	for i := range recs {
		r := &recs[i]
		if err := h.Set(rowIdx[name(r)], colIdx[r.Seq], value(r)); err != nil {
			return nil, err
		}
	}
	return h, nil
}
