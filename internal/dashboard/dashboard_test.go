package dashboard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"branchsim/internal/obs"
)

func frame(t *testing.T, rec any) []byte {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

func feedArm(t *testing.T, st *State, key, pred string, fail bool) {
	t.Helper()
	st.Ingest(frame(t, &obs.ArmStartRecord{Type: obs.RecArmStart, V: obs.SchemaV1, Kind: "run", Key: key}))
	rec := obs.ArmRecord{
		Type: obs.RecArm, V: obs.SchemaV1, Kind: "run", Key: key,
		Workload: "loop", Input: "small", Predictor: pred,
		Source: obs.SourceComputed, Events: 1000, WallNanos: 5e6,
	}
	if fail {
		rec.Error = "boom"
	}
	st.Ingest(frame(t, &rec))
}

func feedInterval(t *testing.T, st *State, pred string, seq int) {
	t.Helper()
	st.Ingest(frame(t, &obs.IntervalRecord{
		Type: obs.RecInterval, V: obs.SchemaV1,
		Workload: "loop", Input: "small", Predictor: pred,
		Seq: seq, Instructions: uint64(seq+1) * 1000,
		DInstructions: 1000, DBranches: 500, DMispredicts: uint64(10 * (seq + 1)),
		CollisionsTracked: true, DCollisions: 20, DDestructive: uint64(5 * (seq + 1)),
	}))
}

func TestStateIngestLifecycle(t *testing.T) {
	st := NewState()
	st.Ingest(frame(t, &obs.ArmStartRecord{Type: obs.RecArmStart, V: obs.SchemaV1, Kind: "run", Key: "k1"}))
	snap := st.Snapshot()
	if len(snap.Arms) != 1 || snap.Arms[0].Status != "running" {
		t.Fatalf("after start: %+v", snap.Arms)
	}
	feedArm(t, st, "k1", "gshare:12", false)
	feedArm(t, st, "k2", "bimodal:12", true)
	st.Ingest(frame(t, &obs.ProgressRecord{Type: obs.RecProgress, V: obs.SchemaV1, ArmsDone: 1, ArmsFailed: 1}))
	st.Ingest(frame(t, &obs.DropsRecord{Type: obs.RecDrops, V: obs.SchemaV1, Dropped: 7}))
	st.Ingest([]byte("not json"))

	snap = st.Snapshot()
	if len(snap.Arms) != 2 {
		t.Fatalf("arms = %d, want 2", len(snap.Arms))
	}
	if snap.Arms[0].Status != "done" || snap.Arms[0].Predictor != "gshare:12" {
		t.Fatalf("arm k1 = %+v", snap.Arms[0])
	}
	if snap.Arms[1].Status != "failed" || snap.Arms[1].Error != "boom" {
		t.Fatalf("arm k2 = %+v", snap.Arms[1])
	}
	if snap.Progress == nil || snap.Progress.ArmsDone != 1 {
		t.Fatalf("progress = %+v", snap.Progress)
	}
	if snap.Drops != 7 || snap.Malformed != 1 {
		t.Fatalf("drops=%d malformed=%d", snap.Drops, snap.Malformed)
	}
}

// TestStateIngestJobs folds bpserve job lifecycle records into the cross-job
// view: one row per job ID, updated in place, submission order preserved.
func TestStateIngestJobs(t *testing.T) {
	st := NewState()
	job := func(id, tenant, state string, done, failed int) {
		st.Ingest(frame(t, &obs.JobRecord{Type: obs.RecJob, V: obs.SchemaV1,
			ID: id, Tenant: tenant, Name: "grid", State: state,
			ArmsTotal: 4, ArmsDone: done, ArmsFailed: failed}))
	}
	job("j000001", "alice", "queued", 0, 0)
	job("j000002", "bob", "running", 1, 0)
	job("j000001", "alice", "running", 2, 0)
	job("j000001", "alice", "done", 4, 0)

	snap := st.Snapshot()
	if len(snap.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(snap.Jobs))
	}
	if j := snap.Jobs[0]; j.ID != "j000001" || j.State != "done" || j.ArmsDone != 4 || j.Tenant != "alice" {
		t.Fatalf("job[0] = %+v", j)
	}
	if j := snap.Jobs[1]; j.ID != "j000002" || j.State != "running" || j.ArmsDone != 1 {
		t.Fatalf("job[1] = %+v", j)
	}
}

func TestStateBoundedStores(t *testing.T) {
	st := NewState()
	for i := 0; i < maxIntervals+10; i++ {
		feedInterval(t, st, "gshare:12", i)
	}
	snap := st.Snapshot()
	if snap.Intervals != maxIntervals {
		t.Fatalf("intervals = %d, want cap %d", snap.Intervals, maxIntervals)
	}
	if snap.IntervalsEvicted != 10 {
		t.Fatalf("evicted = %d, want 10", snap.IntervalsEvicted)
	}
	if got := len(st.Tail(0)); got != tailLines {
		t.Fatalf("tail = %d lines, want %d", got, tailLines)
	}
	// Tail keeps the newest lines.
	last := st.Tail(1)[0]
	if !strings.Contains(string(last), fmt.Sprintf(`"seq":%d`, maxIntervals+9)) {
		t.Fatalf("tail newest = %s", last)
	}
}

func TestHandlerRoutes(t *testing.T) {
	st := NewState()
	feedArm(t, st, "k1", "gshare:12", false)
	for seq := 0; seq < 3; seq++ {
		feedInterval(t, st, "gshare:12", seq)
		feedInterval(t, st, "bimodal:12", seq)
	}
	srv := httptest.NewServer(Handler(st))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, ct := get("/"); code != 200 || !strings.Contains(body, "branchsim dashboard") || !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/ -> %d %q", code, ct)
	}
	if code, _, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope -> %d, want 404", code)
	}
	code, body, _ := get("/api/state")
	if code != 200 {
		t.Fatalf("/api/state -> %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("state json: %v", err)
	}
	if len(snap.Arms) != 1 || snap.Intervals != 6 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if code, body, _ := get("/api/tail?n=2"); code != 200 || strings.Count(body, "\n") != 2 {
		t.Fatalf("/api/tail -> %d, %d lines", code, strings.Count(body, "\n"))
	}
	for _, path := range []string{
		"/plot/intervals.svg",
		"/plot/intervals.svg?metric=destructive",
		"/plot/intervals.svg?metric=accuracy",
		"/plot/heatmap.svg",
	} {
		code, body, ct := get(path)
		if code != 200 || !strings.HasPrefix(ct, "image/svg+xml") || !strings.Contains(body, "<svg") {
			t.Fatalf("%s -> %d %q", path, code, ct)
		}
	}
	if code, _, _ := get("/plot/intervals.svg?metric=bogus"); code != 400 {
		t.Fatalf("bogus metric -> %d, want 400", code)
	}
	// Both series appear in the curves.
	_, body, _ = get("/plot/intervals.svg")
	if !strings.Contains(body, "gshare:12") || !strings.Contains(body, "bimodal:12") {
		t.Fatal("curve SVG missing a predictor series")
	}
}

func TestHandlerEmptyStateCharts(t *testing.T) {
	srv := httptest.NewServer(Handler(NewState()))
	defer srv.Close()
	for _, path := range []string{"/plot/intervals.svg", "/plot/heatmap.svg"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("%s on empty state -> %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestAttachFeedsFromLiveBus(t *testing.T) {
	o := obs.New()
	defer o.Close()
	st, stop := Attach(o)
	sp := o.StartArm("run", "arm-1")
	sp.SetLabels("loop", "small", "gshare:12", "")
	sp.End(nil)
	o.Publish(&obs.IntervalRecord{
		Workload: "loop", Input: "small", Predictor: "gshare:12",
		Seq: 0, Instructions: 1000, DInstructions: 1000, DMispredicts: 5,
	})

	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := st.Snapshot()
		if len(snap.Arms) == 1 && snap.Arms[0].Status == "done" && snap.Intervals == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("state never caught up: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	// After stop the feeder is drained; further publishes don't arrive.
	o.Publish(&obs.ProgressRecord{})
	time.Sleep(10 * time.Millisecond)
	if st.Snapshot().Progress != nil {
		t.Fatal("state updated after stop")
	}
}
