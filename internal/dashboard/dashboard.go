// Package dashboard is the live experiment UI: a server-side state model
// fed by the obs event bus (or a journal tail), HTTP handlers exposing that
// state as JSON, SVG charts rendered by internal/plot, and an embedded
// single-page front end. It consumes only the versioned {type,v} JSONL
// envelope — the same schema the journal uses — so it works identically
// over a live sweep (bpexperiment -serve), a finished journal (bpdash) and
// an in-flight journal (bpdash -follow).
package dashboard

import (
	"sync"

	"branchsim/internal/obs"
)

// Bounds on the in-memory state: the dashboard must stay O(1) in stream
// length no matter how long the sweep runs.
const (
	// maxIntervals caps the interval-record store behind the charts; the
	// oldest records are evicted (and counted) past it.
	maxIntervals = 8192
	// tailLines is the journal-tail pane depth.
	tailLines = 200
	// maxTraces caps the retained trace store: the oldest complete traces
	// are evicted past it. Spans within one trace are unbounded — a trace
	// is request → job → arms, which the arm quota already bounds.
	maxTraces = 64
)

// Arm is one sweep arm's live status row.
type Arm struct {
	Kind      string `json:"kind"`
	Key       string `json:"key"`
	Workload  string `json:"workload,omitempty"`
	Input     string `json:"input,omitempty"`
	Predictor string `json:"predictor,omitempty"`
	Scheme    string `json:"scheme,omitempty"`

	// Status is "running", "done" or "failed".
	Status string `json:"status"`
	// Source is where the result came from once the arm ended (computed,
	// checkpoint, singleflight).
	Source  string            `json:"source,omitempty"`
	Retries int               `json:"retries,omitempty"`
	Phases  []obs.PhaseTiming `json:"phases,omitempty"`

	Events       uint64  `json:"events,omitempty"`
	WallNanos    int64   `json:"wall_ns,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// Job is one sweep-service job's live status row (bpserve publishes these;
// offline journals have none).
type Job struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Name   string `json:"name,omitempty"`
	// State is queued, running, done, failed or cancelled.
	State      string `json:"state"`
	ArmsTotal  int    `json:"arms_total"`
	ArmsDone   int    `json:"arms_done"`
	ArmsFailed int    `json:"arms_failed"`
	Error      string `json:"error,omitempty"`
}

// State is the dashboard's server-side model. Feed it record frames with
// Ingest; read it through the Handler routes. Safe for concurrent use.
type State struct {
	mu sync.Mutex

	arms  map[string]*Arm
	order []string // arm keys in first-seen order

	jobs     map[string]*Job
	jobOrder []string // job IDs in first-seen order

	progress obs.ProgressRecord
	hasProg  bool

	intervals        []obs.IntervalRecord
	intervalsEvicted uint64

	confidence        []obs.ConfidenceRecord
	confidenceEvicted uint64

	tail  [][]byte // ring of the newest raw JSONL lines
	tailN uint64   // total lines ever ingested

	traces     map[string][]obs.SpanRecord
	traceOrder []string // trace IDs in first-seen order

	malformed uint64
	drops     uint64 // cumulative upstream frame drops (DropsRecord)

	// liveDrops reports this consumer's own bus-queue drops (set by Attach).
	liveDrops func() uint64
}

// NewState returns an empty model.
func NewState() *State {
	return &State{arms: map[string]*Arm{}, jobs: map[string]*Job{}, traces: map[string][]obs.SpanRecord{}}
}

// Ingest feeds one JSONL record frame (no trailing newline). Unparseable
// frames are counted, not fatal — the stream may be from a newer schema.
func (st *State) Ingest(line []byte) {
	rec, err := obs.DecodeRecord(line)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.pushTail(line)
	if err != nil {
		st.malformed++
		return
	}
	switch r := rec.(type) {
	case *obs.ArmStartRecord:
		a := st.arm(r.Key)
		a.Kind = r.Kind
		a.Status = "running"
	case *obs.ArmRecord:
		a := st.arm(r.Key)
		a.Kind = r.Kind
		if r.Error != "" {
			a.Status, a.Error = "failed", r.Error
		} else {
			a.Status = "done"
		}
		a.Workload, a.Input = r.Workload, r.Input
		a.Predictor, a.Scheme = r.Predictor, r.Scheme
		a.Source, a.Retries, a.Phases = r.Source, r.Retries, r.Phases
		a.Events, a.WallNanos, a.EventsPerSec = r.Events, r.WallNanos, r.EventsPerSec
	case *obs.IntervalRecord:
		if len(st.intervals) >= maxIntervals {
			n := copy(st.intervals, st.intervals[1:])
			st.intervals = st.intervals[:n]
			st.intervalsEvicted++
		}
		st.intervals = append(st.intervals, *r)
	case *obs.ConfidenceRecord:
		if len(st.confidence) >= maxIntervals {
			n := copy(st.confidence, st.confidence[1:])
			st.confidence = st.confidence[:n]
			st.confidenceEvicted++
		}
		st.confidence = append(st.confidence, *r)
	case *obs.JobRecord:
		j := st.jobs[r.ID]
		if j == nil {
			j = &Job{ID: r.ID}
			st.jobs[r.ID] = j
			st.jobOrder = append(st.jobOrder, r.ID)
		}
		j.Tenant, j.Name, j.State = r.Tenant, r.Name, r.State
		j.ArmsTotal, j.ArmsDone, j.ArmsFailed = r.ArmsTotal, r.ArmsDone, r.ArmsFailed
		j.Error = r.Error
	case *obs.SpanRecord:
		if _, ok := st.traces[r.TraceID]; !ok {
			if len(st.traceOrder) >= maxTraces {
				oldest := st.traceOrder[0]
				st.traceOrder = st.traceOrder[1:]
				delete(st.traces, oldest)
			}
			st.traceOrder = append(st.traceOrder, r.TraceID)
		}
		st.traces[r.TraceID] = append(st.traces[r.TraceID], *r)
	case *obs.ProgressRecord:
		st.progress, st.hasProg = *r, true
	case *obs.DropsRecord:
		if r.Dropped > st.drops {
			st.drops = r.Dropped
		}
	}
}

// arm returns the status row for key, creating it in arrival order.
// Caller holds st.mu.
func (st *State) arm(key string) *Arm {
	a := st.arms[key]
	if a == nil {
		a = &Arm{Key: key, Status: "running"}
		st.arms[key] = a
		st.order = append(st.order, key)
	}
	return a
}

// pushTail appends one raw line to the tail ring. Caller holds st.mu.
func (st *State) pushTail(line []byte) {
	cp := make([]byte, len(line))
	copy(cp, line)
	if len(st.tail) >= tailLines {
		n := copy(st.tail, st.tail[1:])
		st.tail = st.tail[:n]
	}
	st.tail = append(st.tail, cp)
	st.tailN++
}

// Snapshot is the /api/state payload.
type Snapshot struct {
	Arms []Arm `json:"arms"`
	// Jobs is the cross-job sweep-service view, first-submitted first
	// (empty unless a bpserve daemon feeds the stream).
	Jobs     []Job               `json:"jobs,omitempty"`
	Progress *obs.ProgressRecord `json:"progress,omitempty"`
	// Intervals is how many interval records the charts currently cover;
	// IntervalsEvicted how many older ones the bounded store let go.
	// Confidence counts the retained confidence records likewise.
	Intervals         int    `json:"intervals"`
	IntervalsEvicted  uint64 `json:"intervals_evicted,omitempty"`
	Confidence        int    `json:"confidence,omitempty"`
	ConfidenceEvicted uint64 `json:"confidence_evicted,omitempty"`
	// Drops is the upstream subscriber drop count reported in the stream;
	// LiveDrops this dashboard's own bus-queue drops. Either being nonzero
	// means the view is lossy (the journal is still complete).
	Drops     uint64 `json:"drops,omitempty"`
	LiveDrops uint64 `json:"live_drops,omitempty"`
	Malformed uint64 `json:"malformed,omitempty"`
	Lines     uint64 `json:"lines"`
}

// Snapshot returns a copy of the current state for JSON rendering.
func (st *State) Snapshot() Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := Snapshot{
		Arms:              make([]Arm, 0, len(st.order)),
		Intervals:         len(st.intervals),
		IntervalsEvicted:  st.intervalsEvicted,
		Confidence:        len(st.confidence),
		ConfidenceEvicted: st.confidenceEvicted,
		Drops:             st.drops,
		Malformed:         st.malformed,
		Lines:             st.tailN,
	}
	for _, key := range st.order {
		out.Arms = append(out.Arms, *st.arms[key])
	}
	for _, id := range st.jobOrder {
		out.Jobs = append(out.Jobs, *st.jobs[id])
	}
	if st.hasProg {
		p := st.progress
		out.Progress = &p
	}
	if st.liveDrops != nil {
		out.LiveDrops = st.liveDrops()
	}
	return out
}

// TraceSummary is one retained trace's row in the /api/traces listing.
type TraceSummary struct {
	TraceID string `json:"trace_id"`
	// Root names the earliest-starting span ("request" for daemon traces).
	Root   string `json:"root"`
	Tenant string `json:"tenant,omitempty"`
	Job    string `json:"job,omitempty"`
	Spans  int    `json:"spans"`
	// DurNanos spans the earliest start to the latest end seen so far.
	DurNanos int64 `json:"dur_ns"`
	Errors   int   `json:"errors,omitempty"`
}

// Traces summarizes the retained traces, oldest first.
func (st *State) Traces() []TraceSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]TraceSummary, 0, len(st.traceOrder))
	for _, id := range st.traceOrder {
		spans := st.traces[id]
		sum := TraceSummary{TraceID: id, Spans: len(spans)}
		t0, t1 := spans[0].StartNanos, spans[0].StartNanos+spans[0].DurNanos
		rootStart := int64(1<<63 - 1)
		for i := range spans {
			sp := &spans[i]
			if sp.StartNanos < t0 {
				t0 = sp.StartNanos
			}
			if end := sp.StartNanos + sp.DurNanos; end > t1 {
				t1 = end
			}
			if sp.StartNanos < rootStart {
				rootStart, sum.Root = sp.StartNanos, sp.Name
			}
			if sum.Tenant == "" {
				sum.Tenant = sp.Tenant
			}
			if sum.Job == "" {
				sum.Job = sp.Job
			}
			if sp.Error != "" {
				sum.Errors++
			}
		}
		sum.DurNanos = t1 - t0
		out = append(out, sum)
	}
	return out
}

// Trace returns a copy of one trace's spans in arrival order, or nil when
// the trace is unknown (or already evicted).
func (st *State) Trace(id string) []obs.SpanRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	spans := st.traces[id]
	if spans == nil {
		return nil
	}
	out := make([]obs.SpanRecord, len(spans))
	copy(out, spans)
	return out
}

// Intervals returns a copy of the retained interval records (charts render
// from this).
func (st *State) Intervals() []obs.IntervalRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]obs.IntervalRecord, len(st.intervals))
	copy(out, st.intervals)
	return out
}

// Tail returns up to n of the newest ingested lines, oldest first.
func (st *State) Tail(n int) [][]byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n <= 0 || n > len(st.tail) {
		n = len(st.tail)
	}
	out := make([][]byte, n)
	copy(out, st.tail[len(st.tail)-n:])
	return out
}

// Attach wires a dashboard to an observer's live bus: it subscribes,
// feeds a State from the stream in a goroutine, and returns the HTTP
// handler plus a stop function that detaches and waits for the feeder to
// drain. Pass the handler to obs.Serve via obs.WithRootHandler.
func Attach(o *obs.Observer) (*State, func()) {
	st := NewState()
	sub := o.Subscribe(1024)
	done := make(chan struct{})
	if sub == nil { // nil (disabled) observer: an empty, static dashboard
		close(done)
		return st, func() {}
	}
	st.liveDrops = sub.Dropped
	go func() {
		defer close(done)
		for line := range sub.C() {
			st.Ingest(line)
		}
	}()
	stop := func() {
		sub.Close()
		<-done
	}
	return st, stop
}

// ConfidenceRecords returns a copy of the retained confidence records (the
// confidence chart renders from this).
func (st *State) ConfidenceRecords() []obs.ConfidenceRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]obs.ConfidenceRecord, len(st.confidence))
	copy(out, st.confidence)
	return out
}
