package serveapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// defaultPoll is the WaitJob polling cadence when the client has none set.
const defaultPoll = 250 * time.Millisecond

// Client drives a bpserve daemon over its versioned job API. The zero value
// is not usable; build one with NewClient. A Client is safe for concurrent
// use.
type Client struct {
	base   string
	tenant string
	hc     *http.Client
	poll   time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTenant stamps every submitted job with the given tenant identity.
func WithTenant(tenant string) ClientOption {
	return func(c *Client) { c.tenant = tenant }
}

// WithHTTPClient substitutes the underlying *http.Client (default:
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithPollInterval sets the WaitJob polling cadence (default 250ms). The
// SSE fast path makes completion latency largely independent of it; the
// poll is the safety net.
func WithPollInterval(d time.Duration) ClientOption {
	return func(c *Client) { c.poll = d }
}

// NewClient returns a client for the daemon at base, e.g.
// "http://127.0.0.1:8321".
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   http.DefaultClient,
		poll: defaultPoll,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// SubmitJob validates and canonicalizes spec (Normalize — parse errors name
// the bad token without a round-trip), stamps the client's tenant when the
// spec carries none, and submits it. The daemon's admission failures come
// back as a typed *Error (IsCode branches on them).
func (c *Client) SubmitJob(ctx context.Context, spec *JobSpec) (*Submitted, error) {
	if spec.Tenant == "" {
		spec.Tenant = c.tenant
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("serveapi: encoding job spec: %w", err)
	}
	out := &Submitted{}
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs", body, TypeSubmitted, out); err != nil {
		return nil, err
	}
	return out, nil
}

// JobStatus fetches one job's snapshot, per-arm results included.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobStatus, error) {
	out := &JobStatus{}
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, TypeJobStatus, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ListJobs fetches summaries of every job the daemon knows, oldest first.
func (c *Client) ListJobs(ctx context.Context) (*JobList, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/jobs", nil)
	if err != nil {
		return nil, fmt.Errorf("serveapi: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serveapi: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("serveapi: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp.StatusCode, data)
	}
	out := &JobList{}
	if err := json.Unmarshal(data, out); err != nil {
		return nil, fmt.Errorf("serveapi: decoding job list: %w", err)
	}
	return out, nil
}

// Tenants fetches the daemon's per-tenant attribution summary.
func (c *Client) Tenants(ctx context.Context) (*TenantList, error) {
	out := &TenantList{}
	if err := c.do(ctx, http.MethodGet, "/api/v1/tenants", nil, TypeTenants, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CancelJob asks the daemon to cancel a job's remaining arms cooperatively
// and returns the resulting snapshot. Cancelling a terminal job is a no-op.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	out := &JobStatus{}
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs/"+id+"/cancel", nil, TypeJobStatus, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitJob blocks until the job reaches a terminal state (or ctx ends) and
// returns its final snapshot. It listens to the daemon's /events SSE stream
// for the job's lifecycle records and re-polls immediately on each — so
// completion is noticed at bus latency — while a periodic status poll
// covers daemons without a bus and dropped frames.
func (c *Client) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	kick := make(chan struct{}, 1)
	go c.watchEvents(ctx, id, kick)
	poll := c.poll
	if poll <= 0 {
		poll = defaultPoll
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.JobStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		case <-kick:
		}
	}
}

// watchEvents follows the daemon's SSE stream, nudging kick whenever a job
// record for id arrives. Best-effort: any failure falls back to the poll
// loop, reconnecting with backoff until ctx ends.
func (c *Client) watchEvents(ctx context.Context, id string, kick chan<- struct{}) {
	for ctx.Err() == nil {
		c.streamEvents(ctx, id, kick)
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}
}

// streamEvents consumes one /events connection until it breaks.
func (c *Client) streamEvents(ctx context.Context, id string, kick chan<- struct{}) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/events", nil)
	if err != nil {
		return
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	// Frames are the journal's JSONL envelope; only job records for our id
	// matter here.
	var frame struct {
		Type string `json:"type"`
		ID   string `json:"id"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		frame.Type, frame.ID = "", ""
		if json.Unmarshal([]byte(data), &frame) != nil {
			continue
		}
		if frame.Type == "job" && frame.ID == id {
			select {
			case kick <- struct{}{}:
			default:
			}
		}
	}
}

// do runs one JSON round-trip: non-2xx responses decode into the typed
// *Error (falling back to the raw body text), 2xx responses decode through
// the {type,v} envelope check.
func (c *Client) do(ctx context.Context, method, path string, body []byte, wantType string, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("serveapi: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serveapi: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("serveapi: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp.StatusCode, data)
	}
	return decodeEnvelope(data, wantType, out)
}

// apiError turns a non-2xx response into the typed *Error when the body
// carries one, else a plain error quoting the body.
func apiError(status int, body []byte) error {
	if e, err := DecodeError(body); err == nil {
		return e
	}
	return fmt.Errorf("serveapi: HTTP %d: %s", status, bytes.TrimSpace(body))
}
