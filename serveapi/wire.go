// Package serveapi is the versioned wire schema and Go client for the
// bpserve sweep service. It is the contract both the daemon
// (internal/serve) and clients (the Client type, cmd/bpsubmit, CI scripts)
// compile against.
//
// Every message carries the {type,v} envelope the run journal established
// (internal/obs): a "type" field naming the message and a "v" schema
// version. Readers reject versions they do not understand with a
// *SchemaError instead of misparsing them, so the daemon and its clients
// can evolve independently. The current version is SchemaV1.
//
// Predictor specifications use the one canonical syntax the rest of the
// system uses — predictor.Spec strings, e.g. "gshare:16KB:h=8" (see
// ParseSpec there). Normalize rewrites every accepted spelling to its
// canonical form and rejects bad specs with an error naming the offending
// token, so a job's arms carry exactly the strings the harness
// singleflight/checkpoint keys are built from.
package serveapi

import (
	"encoding/json"
	"fmt"
	"strings"

	"branchsim/internal/predictor"
)

// SchemaV1 is the current job API schema version, stamped into every
// message's "v" field.
const SchemaV1 = 1

// Message type names on the job API wire.
const (
	// TypeJobSpec is a job submission (JobSpec), the POST /api/v1/jobs body.
	TypeJobSpec = "job_spec"
	// TypeSubmitted acknowledges an accepted job (Submitted).
	TypeSubmitted = "job_submitted"
	// TypeJobStatus is a job's lifecycle snapshot with per-arm results
	// (JobStatus).
	TypeJobStatus = "job_status"
	// TypeError is a typed request failure (Error).
	TypeError = "error"
	// TypeTenants is the per-tenant attribution summary (TenantList).
	TypeTenants = "tenants"
)

// Job lifecycle states, as reported in JobStatus.State.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Arm lifecycle states, as reported in ArmResult.State.
const (
	ArmPending = "pending"
	ArmRunning = "running"
	ArmDone    = "done"
	ArmFailed  = "failed"
)

// JobSpec is one sweep job: a (workload × input × predictor-spec × scheme)
// grid the daemon expands into arms. The zero values of the list fields are
// invalid; Normalize validates and canonicalizes a spec before submission.
type JobSpec struct {
	Type string `json:"type"`
	V    int    `json:"v"`

	// Tenant identifies the submitting tenant for admission control. The
	// client stamps it from its own configuration; empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Name is a freeform label echoed in status records and dashboards.
	Name string `json:"name,omitempty"`

	// Workloads, Inputs and Predictors span the grid. Predictors use
	// predictor.Spec syntax ("2bcgskew:8KB"); Normalize canonicalizes them.
	Workloads  []string `json:"workloads"`
	Inputs     []string `json:"inputs"`
	Predictors []string `json:"predictors"`
	// Schemes are static-filter schemes crossed into the grid ("none",
	// "static95", "staticacc", ...). Empty means ["none"] — pure dynamic.
	Schemes []string `json:"schemes,omitempty"`
}

// Stamp fills the envelope fields. Clients call it (or let Normalize) before
// encoding; the decoder rejects a missing or foreign envelope.
func (s *JobSpec) Stamp() { s.Type, s.V = TypeJobSpec, SchemaV1 }

// Normalize validates the spec in place: the envelope is stamped, every
// predictor spec is parsed and rewritten to its canonical predictor.Spec
// string (the exact string the daemon's dedupe keys use), the scheme list
// defaults to ["none"], and empty grid dimensions are rejected. Errors name
// the offending token.
func (s *JobSpec) Normalize() error {
	s.Stamp()
	if len(s.Workloads) == 0 {
		return fmt.Errorf("serveapi: job spec: no workloads")
	}
	if len(s.Inputs) == 0 {
		return fmt.Errorf("serveapi: job spec: no inputs")
	}
	if len(s.Predictors) == 0 {
		return fmt.Errorf("serveapi: job spec: no predictors")
	}
	for i, raw := range s.Predictors {
		spec, err := predictor.ParseSpec(raw)
		if err != nil {
			return fmt.Errorf("serveapi: job spec: %w", err)
		}
		s.Predictors[i] = spec.String()
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []string{"none"}
	}
	for i, sch := range s.Schemes {
		sch = strings.ToLower(strings.TrimSpace(sch))
		if sch == "" {
			sch = "none"
		}
		s.Schemes[i] = sch
	}
	return nil
}

// Arms expands the grid in deterministic order: workloads outermost, then
// inputs, predictors, schemes. Call Normalize first; Arms performs no
// validation.
func (s *JobSpec) Arms() []Arm {
	out := make([]Arm, 0, len(s.Workloads)*len(s.Inputs)*len(s.Predictors)*len(s.Schemes))
	for _, wl := range s.Workloads {
		for _, in := range s.Inputs {
			for _, pred := range s.Predictors {
				for _, sch := range s.Schemes {
					out = append(out, Arm{Workload: wl, Input: in, Predictor: pred, Scheme: sch})
				}
			}
		}
	}
	return out
}

// Arm is one point of a job's grid.
type Arm struct {
	Workload  string `json:"workload"`
	Input     string `json:"input"`
	Predictor string `json:"predictor"` // canonical predictor.Spec string
	Scheme    string `json:"scheme"`
}

// Key is the arm's stable identity within a job ("compress/test/gshare:8KB/none").
func (a Arm) Key() string {
	return a.Workload + "/" + a.Input + "/" + a.Predictor + "/" + a.Scheme
}

// Metrics is the wire form of one arm's simulation result. Field for field
// it mirrors the simulator's metrics struct, so a daemon result is
// bit-identical to an offline run of the same arm.
type Metrics struct {
	Instructions uint64 `json:"instructions"`
	Branches     uint64 `json:"branches"`
	Taken        uint64 `json:"taken"`
	Mispredicts  uint64 `json:"mispredicts"`

	// Collision counters, populated when the arm tracked collisions (the
	// daemon always does, matching the experiment harness).
	CollisionsTracked bool   `json:"collisions_tracked,omitempty"`
	Collisions        uint64 `json:"collisions,omitempty"`
	Constructive      uint64 `json:"constructive,omitempty"`
	Destructive       uint64 `json:"destructive,omitempty"`
}

// MISPKI returns mispredictions per thousand instructions, the paper's
// primary metric.
func (m Metrics) MISPKI() float64 {
	if m.Instructions == 0 {
		return 0
	}
	return 1000 * float64(m.Mispredicts) / float64(m.Instructions)
}

// Accuracy returns the fraction of branches predicted correctly.
func (m Metrics) Accuracy() float64 {
	if m.Branches == 0 {
		return 0
	}
	return 1 - float64(m.Mispredicts)/float64(m.Branches)
}

// ArmResult is one arm's state and, when done, its metrics.
type ArmResult struct {
	Arm
	State   string   `json:"state"` // pending|running|done|failed
	Metrics *Metrics `json:"metrics,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// Submitted acknowledges an accepted job.
type Submitted struct {
	Type string `json:"type"`
	V    int    `json:"v"`

	// ID is the daemon-assigned job identifier; poll it with JobStatus.
	ID string `json:"id"`
	// Arms is the expanded arm count the job was admitted with.
	Arms int `json:"arms"`
	// TraceID identifies the job's trace when the daemon traces requests;
	// feed it to `bpjournal -trace` against captured live frames. Empty
	// when tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
}

// Stamp fills the envelope fields.
func (s *Submitted) Stamp() { s.Type, s.V = TypeSubmitted, SchemaV1 }

// JobStatus is one job's lifecycle snapshot. Terminal states carry the full
// per-arm result list.
type JobStatus struct {
	Type string `json:"type"`
	V    int    `json:"v"`

	ID string `json:"id"`
	// TraceID is the job's trace, when the daemon traces requests.
	TraceID string `json:"trace_id,omitempty"`
	Tenant  string `json:"tenant"`
	Name    string `json:"name,omitempty"`
	// State is queued, running, done, failed or cancelled.
	State string `json:"state"`

	ArmsTotal  int `json:"arms_total"`
	ArmsDone   int `json:"arms_done"`
	ArmsFailed int `json:"arms_failed"`

	// Error summarizes a failed job (its first failed arm's error).
	Error string `json:"error,omitempty"`
	// Arms carries per-arm results in grid-expansion order.
	Arms []ArmResult `json:"arms,omitempty"`
}

// Stamp fills the envelope fields.
func (s *JobStatus) Stamp() { s.Type, s.V = TypeJobStatus, SchemaV1 }

// Terminal reports whether the job has reached a final state.
func (s *JobStatus) Terminal() bool {
	switch s.State {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// JobList is the GET /api/v1/jobs payload: job summaries (no per-arm
// results), oldest first.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// TenantSummary is one tenant's attribution ledger: what the daemon admitted,
// shed, ran and charged on the tenant's behalf since boot.
type TenantSummary struct {
	Tenant string `json:"tenant"`

	// Jobs counts admitted jobs; JobsDone/JobsFailed/JobsCancelled are the
	// terminal outcomes reached so far.
	Jobs          uint64 `json:"jobs"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	// Shed counts load-shedding rejections (quota or draining).
	Shed uint64 `json:"shed"`

	// ArmsRun counts arms that reached a terminal non-cancelled state;
	// ArmsFailed is the failing subset. ArmsSaved is how many of those the
	// checkpoint store or cross-job singleflight answered without
	// recompute. Branches is the simulated-branch volume charged to the
	// tenant across its done arms.
	ArmsRun    uint64 `json:"arms_run"`
	ArmsFailed uint64 `json:"arms_failed"`
	ArmsSaved  uint64 `json:"arms_saved"`
	Branches   uint64 `json:"branches"`

	// Job-latency aggregates over the tenant's terminal jobs, milliseconds.
	LatencyMeanMS float64 `json:"latency_mean_ms,omitempty"`
	LatencyMaxMS  float64 `json:"latency_max_ms,omitempty"`
}

// TenantList is the GET /api/v1/tenants payload, sorted by tenant name.
type TenantList struct {
	Type string `json:"type"`
	V    int    `json:"v"`

	Tenants []TenantSummary `json:"tenants"`
}

// Stamp fills the envelope fields.
func (s *TenantList) Stamp() { s.Type, s.V = TypeTenants, SchemaV1 }

// SchemaError reports a wire message whose type or schema version this
// reader does not understand, mirroring the journal reader's discipline:
// fail loudly, never misparse.
type SchemaError struct {
	// Want is the message type the caller was decoding.
	Want string
	// Type and Version are what the message declared.
	Type    string
	Version int
}

// Error implements error.
func (e *SchemaError) Error() string {
	return fmt.Sprintf("serveapi: unsupported message schema: type=%q v=%d (want type %q, version %d)",
		e.Type, e.Version, e.Want, SchemaV1)
}

// envelope is the {type,v} head every message is peeked through.
type envelope struct {
	Type string `json:"type"`
	V    int    `json:"v"`
}

// decodeEnvelope unmarshals data into out after checking its {type,v}
// envelope against wantType and SchemaV1.
func decodeEnvelope(data []byte, wantType string, out any) error {
	var head envelope
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("serveapi: decoding %s: %w", wantType, err)
	}
	if head.Type != wantType || head.V != SchemaV1 {
		return &SchemaError{Want: wantType, Type: head.Type, Version: head.V}
	}
	return json.Unmarshal(data, out)
}

// DecodeJobSpec decodes a {type:"job_spec",v:1} message.
func DecodeJobSpec(data []byte) (*JobSpec, error) {
	s := &JobSpec{}
	if err := decodeEnvelope(data, TypeJobSpec, s); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSubmitted decodes a {type:"job_submitted",v:1} message.
func DecodeSubmitted(data []byte) (*Submitted, error) {
	s := &Submitted{}
	if err := decodeEnvelope(data, TypeSubmitted, s); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeTenants decodes a {type:"tenants",v:1} message.
func DecodeTenants(data []byte) (*TenantList, error) {
	s := &TenantList{}
	if err := decodeEnvelope(data, TypeTenants, s); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeJobStatus decodes a {type:"job_status",v:1} message.
func DecodeJobStatus(data []byte) (*JobStatus, error) {
	s := &JobStatus{}
	if err := decodeEnvelope(data, TypeJobStatus, s); err != nil {
		return nil, err
	}
	return s, nil
}
