package serveapi

import (
	"errors"
	"fmt"
	"net/http"
)

// Error codes the daemon's admission control and routing return. Clients
// branch on Code, not on message text or HTTP status.
const (
	// CodeBadRequest is a malformed request: undecodable body, wrong
	// envelope, bad route parameter.
	CodeBadRequest = "bad_request"
	// CodeBadSpec is a job spec that failed validation; the message names
	// the offending token (unknown scheme, bad size suffix, ...).
	CodeBadSpec = "bad_spec"
	// CodeQuotaJobs means the tenant already has its maximum number of jobs
	// in flight. Back off and resubmit; the daemon never queues unboundedly.
	CodeQuotaJobs = "quota_jobs"
	// CodeQuotaArms means the job's expanded grid exceeds the per-job arm
	// quota. Split the grid into smaller jobs.
	CodeQuotaArms = "quota_arms"
	// CodeDraining means the daemon is shutting down and no longer admits
	// jobs. In-flight jobs drain; resubmit to the replacement instance.
	CodeDraining = "draining"
	// CodeNotFound means the job ID is unknown to this daemon.
	CodeNotFound = "not_found"
)

// Error is the typed failure the job API returns instead of free-text HTTP
// errors. It is both the wire message ({type:"error",v:1}) and the Go error
// clients receive.
type Error struct {
	Type string `json:"type"`
	V    int    `json:"v"`

	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Stamp fills the envelope fields.
func (e *Error) Stamp() { e.Type, e.V = TypeError, SchemaV1 }

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("serveapi: %s: %s", e.Code, e.Message)
}

// Errorf builds a stamped Error.
func Errorf(code, format string, args ...any) *Error {
	e := &Error{Code: code, Message: fmt.Sprintf(format, args...)}
	e.Stamp()
	return e
}

// HTTPStatus maps the error code to the status the daemon serves it with.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeBadSpec:
		return http.StatusBadRequest
	case CodeQuotaJobs:
		return http.StatusTooManyRequests
	case CodeQuotaArms:
		return http.StatusRequestEntityTooLarge
	case CodeDraining:
		return http.StatusServiceUnavailable
	case CodeNotFound:
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// DecodeError decodes a {type:"error",v:1} message.
func DecodeError(data []byte) (*Error, error) {
	e := &Error{}
	if err := decodeEnvelope(data, TypeError, e); err != nil {
		return nil, err
	}
	return e, nil
}

// IsCode reports whether err (or anything it wraps) is a serveapi.Error
// with the given code.
func IsCode(err error, code string) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == code
}
