package serveapi

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestJobSpecNormalizeCanonicalizes(t *testing.T) {
	s := &JobSpec{
		Workloads:  []string{"compress"},
		Inputs:     []string{"test"},
		Predictors: []string{"GShare:16k : h=8", "2bc-gskew", "bimodal:2048B"},
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	want := []string{"gshare:16KB:h=8", "2bcgskew:8KB", "bimodal:2KB"}
	if !reflect.DeepEqual(s.Predictors, want) {
		t.Errorf("canonical predictors = %v, want %v", s.Predictors, want)
	}
	if !reflect.DeepEqual(s.Schemes, []string{"none"}) {
		t.Errorf("default schemes = %v, want [none]", s.Schemes)
	}
	if s.Type != TypeJobSpec || s.V != SchemaV1 {
		t.Errorf("envelope = %q/%d, want %q/%d", s.Type, s.V, TypeJobSpec, SchemaV1)
	}
}

func TestJobSpecNormalizeNamesBadToken(t *testing.T) {
	s := &JobSpec{
		Workloads:  []string{"compress"},
		Inputs:     []string{"test"},
		Predictors: []string{"gshare:16KB", "gsharre:8KB"},
	}
	err := s.Normalize()
	if err == nil {
		t.Fatal("want error for unknown scheme")
	}
	if !strings.Contains(err.Error(), `"gsharre"`) {
		t.Errorf("error %q does not name the bad token", err)
	}

	s = &JobSpec{Workloads: []string{"compress"}, Inputs: []string{"test"},
		Predictors: []string{"gshare:8KB:z=3"}}
	if err := s.Normalize(); err == nil || !strings.Contains(err.Error(), `"z"`) {
		t.Errorf("option error = %v, want one naming key \"z\"", err)
	}

	for _, s := range []*JobSpec{
		{Inputs: []string{"test"}, Predictors: []string{"gshare"}},
		{Workloads: []string{"compress"}, Predictors: []string{"gshare"}},
		{Workloads: []string{"compress"}, Inputs: []string{"test"}},
	} {
		if err := s.Normalize(); err == nil {
			t.Errorf("empty dimension %+v: want error", s)
		}
	}
}

func TestJobSpecArmsOrderAndCount(t *testing.T) {
	s := &JobSpec{
		Workloads:  []string{"compress", "go"},
		Inputs:     []string{"test"},
		Predictors: []string{"bimodal:1KB", "gshare:1KB"},
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	arms := s.Arms()
	if len(arms) != 4 {
		t.Fatalf("arm count = %d, want 4", len(arms))
	}
	want := Arm{Workload: "compress", Input: "test", Predictor: "bimodal:1KB", Scheme: "none"}
	if arms[0] != want {
		t.Errorf("arms[0] = %+v, want %+v", arms[0], want)
	}
	if got := arms[3].Key(); got != "go/test/gshare:1KB/none" {
		t.Errorf("arms[3].Key() = %q", got)
	}
}

// TestWireRoundTrips encodes each message type and decodes it back through
// its envelope-checking decoder.
func TestWireRoundTrips(t *testing.T) {
	spec := &JobSpec{Tenant: "alice", Name: "grid-1",
		Workloads: []string{"compress"}, Inputs: []string{"test"},
		Predictors: []string{"gshare:8KB"}, Schemes: []string{"none", "static95"}}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	data, _ := json.Marshal(spec)
	spec2, err := DecodeJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, spec2) {
		t.Errorf("job spec round trip: got %+v, want %+v", spec2, spec)
	}

	sub := &Submitted{ID: "j000001", Arms: 2}
	sub.Stamp()
	data, _ = json.Marshal(sub)
	sub2, err := DecodeSubmitted(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub, sub2) {
		t.Errorf("submitted round trip: got %+v, want %+v", sub2, sub)
	}

	st := &JobStatus{ID: "j000001", Tenant: "alice", State: StateDone,
		ArmsTotal: 1, ArmsDone: 1,
		Arms: []ArmResult{{
			Arm:     Arm{Workload: "compress", Input: "test", Predictor: "gshare:8KB", Scheme: "none"},
			State:   ArmDone,
			Metrics: &Metrics{Instructions: 1000, Branches: 100, Taken: 60, Mispredicts: 7, CollisionsTracked: true, Collisions: 3, Destructive: 2, Constructive: 1},
		}}}
	st.Stamp()
	data, _ = json.Marshal(st)
	st2, err := DecodeJobStatus(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Errorf("job status round trip: got %+v, want %+v", st2, st)
	}

	apiErr := Errorf(CodeQuotaJobs, "tenant %q has %d jobs in flight", "alice", 4)
	data, _ = json.Marshal(apiErr)
	apiErr2, err := DecodeError(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(apiErr, apiErr2) {
		t.Errorf("error round trip: got %+v, want %+v", apiErr2, apiErr)
	}
	if !IsCode(apiErr2, CodeQuotaJobs) {
		t.Error("IsCode(CodeQuotaJobs) = false")
	}
}

// TestDecodeRejectsForeignSchema proves every decoder fails with a
// *SchemaError on unknown versions and types rather than misparsing.
func TestDecodeRejectsForeignSchema(t *testing.T) {
	cases := []struct {
		name string
		data string
		dec  func([]byte) (any, error)
	}{
		{"future version", `{"type":"job_spec","v":2,"workloads":["x"]}`,
			func(b []byte) (any, error) { return DecodeJobSpec(b) }},
		{"wrong type", `{"type":"job_status","v":1}`,
			func(b []byte) (any, error) { return DecodeJobSpec(b) }},
		{"missing envelope", `{"workloads":["x"]}`,
			func(b []byte) (any, error) { return DecodeJobSpec(b) }},
		{"status future version", `{"type":"job_status","v":99}`,
			func(b []byte) (any, error) { return DecodeJobStatus(b) }},
		{"submitted wrong type", `{"type":"error","v":1}`,
			func(b []byte) (any, error) { return DecodeSubmitted(b) }},
		{"error future version", `{"type":"error","v":7}`,
			func(b []byte) (any, error) { return DecodeError(b) }},
	}
	for _, tc := range cases {
		_, err := tc.dec([]byte(tc.data))
		var se *SchemaError
		if !errors.As(err, &se) {
			t.Errorf("%s: err = %v, want *SchemaError", tc.name, err)
		}
	}
}

func TestMetricsDerived(t *testing.T) {
	m := Metrics{Instructions: 2000, Branches: 400, Mispredicts: 10}
	if got := m.MISPKI(); got != 5 {
		t.Errorf("MISPKI = %v, want 5", got)
	}
	if got := m.Accuracy(); got != 0.975 {
		t.Errorf("Accuracy = %v, want 0.975", got)
	}
	var zero Metrics
	if zero.MISPKI() != 0 || zero.Accuracy() != 0 {
		t.Error("zero metrics should have zero derived values")
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	for code, want := range map[string]int{
		CodeBadRequest: 400, CodeBadSpec: 400, CodeQuotaJobs: 429,
		CodeQuotaArms: 413, CodeDraining: 503, CodeNotFound: 404, "other": 500,
	} {
		if got := Errorf(code, "x").HTTPStatus(); got != want {
			t.Errorf("HTTPStatus(%s) = %d, want %d", code, got, want)
		}
	}
}
