package branchsim

import (
	"context"
	"fmt"

	"branchsim/internal/obs"
	"branchsim/internal/predictor"
	"branchsim/internal/sim"
	"branchsim/internal/telemetry"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

// SimOption configures one Simulate call. Options compose left to right;
// later options override earlier ones where they overlap (e.g. the last of
// WithPredictor / WithPredictorSpec wins).
type SimOption func(*simConfig)

type simConfig struct {
	workload   string
	input      string
	pred       Predictor
	predSpec   string
	collisions bool
	noBatch    bool
	profile    *ProfileDB
	obs        *obs.Observer
	telemetry  telemetry.Config
}

// Workload names the instrumented program to simulate ("gcc", "compress").
func Workload(name string) SimOption {
	return func(c *simConfig) { c.workload = name }
}

// Input names the workload input set (InputTest, InputTrain, InputRef).
func Input(name string) SimOption {
	return func(c *simConfig) { c.input = name }
}

// WithPredictor sets the predictor under test — possibly a *Combined built
// by Combine. It takes precedence over WithPredictorSpec.
func WithPredictor(p Predictor) SimOption {
	return func(c *simConfig) { c.pred = p; c.predSpec = "" }
}

// WithPredictorSpec builds the predictor from a spec string such as
// "gshare:16KB" or "gshare:4KB:h=8" (see PredictorNames for schemes). An
// empty spec means no predictor: combined with WithProfileInto it collects
// the paper's bias-only profile.
func WithPredictorSpec(spec string) SimOption {
	return func(c *simConfig) { c.pred = nil; c.predSpec = spec }
}

// WithCollisions enables the paper's aliasing instrumentation when the
// predictor supports it (see the Collider interface).
func WithCollisions() SimOption {
	return func(c *simConfig) { c.collisions = true }
}

// WithBatch toggles the batched simulation route (the default is on). When
// the predictor has a devirtualized block kernel, Simulate records the
// workload's branch stream into in-memory chunks and feeds it back through
// the block decoder, instead of fusing per-event prediction into the
// instrumented execution. Results are bit-identical either way; off is the
// -no-batch escape hatch and the scalar baseline for benchmarks.
func WithBatch(on bool) SimOption {
	return func(c *simConfig) { c.noBatch = !on }
}

// WithProfileInto collects per-branch statistics into db during the run
// (the paper's phase-1 profiling). With no predictor configured, the run is
// a bias-only profile pass: no prediction happens, and the returned Metrics
// carry only the stream counts.
func WithProfileInto(db *ProfileDB) SimOption {
	return func(c *simConfig) { c.profile = db }
}

// WithObserver publishes the run to an observability sink: branch-event
// counters stream to o's registry while the run executes, and one ArmRecord
// (kind "simulate") is journaled when it completes. A nil o — the default —
// disables observation at zero cost. Observation never changes results.
func WithObserver(o *Observer) SimOption {
	return func(c *simConfig) { c.obs = o }
}

// WithTelemetry enables simulation-domain telemetry for the run: an interval
// time-series of the paper's metrics, predictor-table introspection samples,
// and per-branch bias/misprediction statistics with bounded top-K
// worst-offender lists, per cfg (see TelemetryConfig). The records are
// journaled through the observer attached with WithObserver; without one
// they are collected and discarded. The zero config disables telemetry.
func WithTelemetry(cfg TelemetryConfig) SimOption {
	return func(c *simConfig) { c.telemetry = cfg }
}

// Simulate executes one simulation described by options and returns its
// metrics:
//
//	m, err := branchsim.Simulate(ctx,
//		branchsim.Workload("gcc"),
//		branchsim.Input(branchsim.InputRef),
//		branchsim.WithPredictorSpec("gshare:16KB"),
//		branchsim.WithCollisions(),
//	)
//
// The run executes under ctx (nil means context.Background()): cancelling
// it stops the run cooperatively, and a panicking predictor or workload is
// returned as a *PanicError instead of crashing the process. Simulate
// subsumes the deprecated Run, RunContext, Profile and ProfileContext
// entry points; results are identical to theirs for equivalent
// configurations.
func Simulate(ctx context.Context, opts ...SimOption) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg simConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	pred := cfg.pred
	if pred == nil && cfg.predSpec != "" {
		p, err := predictor.New(cfg.predSpec)
		if err != nil {
			return Metrics{}, err
		}
		pred = p
	}
	if pred == nil && cfg.profile == nil {
		return Metrics{}, fmt.Errorf("branchsim: no predictor configured: pass WithPredictor or WithPredictorSpec (or WithProfileInto for a bias-only profile)")
	}
	label := predictor.Canonical(cfg.predSpec)
	if label == "" && pred != nil {
		label = pred.Name()
	}
	span := cfg.obs.StartArm("simulate", "s|"+cfg.workload+"|"+cfg.input+"|"+label)
	span.SetLabels(cfg.workload, cfg.input, label, "")
	m, err := cfg.simulate(ctx, pred, span)
	if err == nil {
		span.SetEvents(m.Branches)
		span.SetMetrics(m)
	}
	span.End(err)
	return m, err
}

// simulate runs the configured simulation: a bias-only profile pass when no
// predictor is configured, a full predictor run otherwise.
func (cfg *simConfig) simulate(ctx context.Context, pred Predictor, span *obs.Span) (Metrics, error) {
	prog, err := workload.Get(cfg.workload)
	if err != nil {
		return Metrics{}, err
	}
	if pred == nil {
		rec := &biasRecorder{db: cfg.profile}
		end := span.Phase(obs.PhaseSimulate)
		err := workload.RunProgram(ctx, prog, cfg.input, rec)
		end()
		if err != nil {
			return Metrics{}, err
		}
		cfg.profile.Instructions = rec.counts.Instructions
		return Metrics{Workload: cfg.workload, Input: cfg.input, Counts: rec.counts}, nil
	}
	sopts := []sim.Option{sim.WithLabels(cfg.workload, cfg.input), sim.WithObserver(cfg.obs),
		sim.WithTelemetry(telemetry.New(cfg.telemetry, cfg.obs))}
	if cfg.collisions {
		sopts = append(sopts, sim.WithCollisions())
	}
	if cfg.profile != nil {
		sopts = append(sopts, sim.WithProfile(cfg.profile))
	}
	runner := sim.NewRunner(pred, sopts...)
	end := span.Phase(obs.PhaseSimulate)
	if !cfg.noBatch && runner.BatchKernel() {
		err = runBatched(ctx, prog, cfg.input, runner)
	} else {
		err = workload.RunProgram(ctx, prog, cfg.input, runner)
	}
	end()
	if err != nil {
		return Metrics{}, err
	}
	return runner.Metrics(), nil
}

// runBatched is the facade's batch route: the instrumented workload records
// through a trace.Batcher, which hands the runner's devirtualized kernel
// whole blocks of branches instead of one event at a time. The stream the
// runner consumes is identical to the one direct execution would feed it, in
// the same order; only the dispatch granularity changes, so results are
// bit-identical to the scalar route.
func runBatched(ctx context.Context, prog workload.Program, input string, runner *sim.Runner) error {
	b := trace.NewBatcher(runner, 0)
	if err := workload.RunProgram(ctx, prog, input, b); err != nil {
		return err
	}
	b.Flush()
	return nil
}
