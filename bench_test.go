// Benchmarks regenerating every table and figure of the paper, plus
// predictor and workload micro-benchmarks.
//
// Each BenchmarkTableN / BenchmarkFigN runs the corresponding experiment on
// the reduced "quick" inputs (train for measurement, test for cross-training
// profiles) and reports the table it produces once, via b.Log at -v. The
// full-scale reproduction — the numbers recorded in EXPERIMENTS.md — comes
// from `go run ./cmd/bpexperiment -run all`, which uses the ref inputs; the
// benchmarks exist so `go test -bench=.` exercises every experiment path and
// times it.
//
// All experiment benchmarks share one caching harness, so an experiment's
// simulations run once regardless of b.N.
package branchsim_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"branchsim"
	"branchsim/internal/experiment"
	"branchsim/internal/obs"
	"branchsim/internal/replay"
	"branchsim/internal/sim"
	"branchsim/internal/telemetry"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
	"branchsim/internal/xrand"
)

var (
	benchHarness     *experiment.Harness
	benchHarnessOnce sync.Once
)

func sharedHarness() *experiment.Harness {
	benchHarnessOnce.Do(func() {
		benchHarness = experiment.NewQuickHarness()
	})
	return benchHarness
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	h := sharedHarness()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(context.Background(), h)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			for _, tb := range res.Tables {
				if err := tb.Render(&sb); err != nil {
					b.Fatal(err)
				}
			}
			b.Log("\n" + sb.String())
		}
	}
}

// ---- paper tables ----

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// ---- paper figures ----

func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// ---- ablations ----

func BenchmarkAblCutoff(b *testing.B)    { benchExperiment(b, "abl-cutoff") }
func BenchmarkAblShift(b *testing.B)     { benchExperiment(b, "abl-shift") }
func BenchmarkAblAgree(b *testing.B)     { benchExperiment(b, "abl-agree") }
func BenchmarkAblStaticCol(b *testing.B) { benchExperiment(b, "abl-staticcol") }
func BenchmarkAblZoo(b *testing.B)       { benchExperiment(b, "abl-zoo") }
func BenchmarkAblHistory(b *testing.B)   { benchExperiment(b, "abl-history") }
func BenchmarkAblModern(b *testing.B)    { benchExperiment(b, "abl-modern") }
func BenchmarkAblPipeline(b *testing.B)  { benchExperiment(b, "abl-pipeline") }
func BenchmarkAblExtra(b *testing.B)     { benchExperiment(b, "abl-extra") }

// ---- predictor micro-benchmarks: events per second per scheme ----

func BenchmarkPredict(b *testing.B) {
	// a mixed synthetic stream: 256 branch sites, biased and correlated
	const nSites = 256
	rng := xrand.New(1)
	pcs := make([]uint64, 4096)
	outs := make([]bool, 4096)
	state := false
	for i := range pcs {
		site := rng.Intn(nSites)
		pcs[i] = 0x1_0000 + uint64(site)*4
		switch {
		case site < 128:
			outs[i] = true // biased sites
		case site < 192:
			outs[i] = state // correlated sites
		default:
			state = rng.Bool(0.5)
			outs[i] = state
		}
	}
	for _, spec := range []string{
		"bimodal:8KB", "ghist:8KB", "gshare:8KB", "bimode:8KB", "2bcgskew:8KB",
		"agree:8KB", "gskew:8KB", "yags:8KB", "local:8KB", "mcfarling:8KB",
		"tage:8KB", "perceptron:8KB",
	} {
		b.Run(spec, func(b *testing.B) {
			p, err := branchsim.NewPredictor(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k := i & 4095
				p.Predict(pcs[k])
				p.Update(pcs[k], outs[k])
			}
		})
	}
}

// ---- workload micro-benchmarks: instrumented run cost ----

func BenchmarkWorkload(b *testing.B) {
	for _, name := range branchsim.Workloads() {
		b.Run(name, func(b *testing.B) {
			p, err := workload.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			var c trace.Counts
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c = trace.Counts{}
				if err := p.Run(context.Background(), workload.InputTest, &c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.Branches), "branches/op")
		})
	}
}

// ---- capture-once replay engine vs direct re-execution ----
//
// Both benchmarks run the same 5-predictor sweep of one benchmark (the
// paper's Table 2 column set on ijpeg); direct re-executes the instrumented
// workload per predictor, replay captures its branch stream once and fans
// out. Recorded in BENCH_replay.json. The replay win scales with the number
// of cores (arms replay in parallel) and with the workload/predictor cost
// ratio; see DESIGN.md §7.

const sweepWorkload = "ijpeg"

func sweepSpecs() []string {
	specs := make([]string, 0, len(experiment.FivePredictors))
	for _, p := range experiment.FivePredictors {
		specs = append(specs, p+":8KB")
	}
	return specs
}

func newSweepRunner(b *testing.B, spec string, sink *obs.Observer, tel telemetry.Config) *sim.Runner {
	b.Helper()
	p, err := branchsim.NewPredictor(spec)
	if err != nil {
		b.Fatal(err)
	}
	return sim.NewRunner(p, sim.WithCollisions(), sim.WithLabels(sweepWorkload, workload.InputTrain),
		sim.WithObserver(sink), sim.WithTelemetry(telemetry.New(tel, sink)))
}

func BenchmarkSweepDirect(b *testing.B) {
	prog, err := workload.Get(sweepWorkload)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var branches uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, spec := range sweepSpecs() {
			r := newSweepRunner(b, spec, nil, telemetry.Config{})
			if err := workload.RunProgram(ctx, prog, workload.InputTrain, r); err != nil {
				b.Fatal(err)
			}
			branches = r.Metrics().Branches
		}
	}
	b.ReportMetric(float64(branches), "branches/arm")
	b.ReportMetric(float64(branches)*float64(len(sweepSpecs()))*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}

func benchSweepReplay(b *testing.B, sink *obs.Observer, tel telemetry.Config, eopts ...replay.Option) {
	prog, err := workload.Get(sweepWorkload)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	arms := make([]replay.Arm, 0, len(sweepSpecs()))
	for _, spec := range sweepSpecs() {
		spec := spec
		arms = append(arms, replay.Arm{Label: spec, New: func() (trace.Recorder, error) {
			return newSweepRunner(b, spec, sink, tel), nil
		}})
	}
	var branches uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration so every iteration pays for its own
		// capture — the steady-state cached case would measure nothing.
		e := replay.New(0, 0, "", eopts...)
		e.SetObserver(sink)
		for _, res := range e.Sweep(ctx, prog, workload.InputTrain, arms) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			branches = res.Rec.(*sim.Runner).Metrics().Branches
		}
		e.Close()
	}
	b.ReportMetric(float64(branches), "branches/arm")
	b.ReportMetric(float64(branches)*float64(len(arms))*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}

func BenchmarkSweepReplay(b *testing.B) { benchSweepReplay(b, nil, telemetry.Config{}) }

// BenchmarkSweepReplayBatch pins the batched-kernel configuration
// explicitly (it is also the default, so this matches BenchmarkSweepReplay)
// and BenchmarkSweepReplayNoBatch is the same sweep on the scalar per-event
// path — the before/after pair recorded in BENCH_kernel.json.
func BenchmarkSweepReplayBatch(b *testing.B) {
	benchSweepReplay(b, nil, telemetry.Config{}, replay.WithBatch(true))
}

func BenchmarkSweepReplayNoBatch(b *testing.B) {
	benchSweepReplay(b, nil, telemetry.Config{}, replay.WithBatch(false))
}

// BenchmarkSweepReplayNoVerify is BenchmarkSweepReplay with chunk checksum
// verification disabled, the -verify-chunks=false configuration. The delta
// against BenchmarkSweepReplay is the price of CRC32C-checking every chunk
// before each of the five replays (capture-side checksumming happens in
// both). Recorded in BENCH_durability.json.
func BenchmarkSweepReplayNoVerify(b *testing.B) {
	benchSweepReplay(b, nil, telemetry.Config{}, replay.WithVerify(false))
}

// BenchmarkSweepReplayObserved is BenchmarkSweepReplay with a live observer
// attached to the engine and every runner. Comparing the two bounds the
// enabled-observability overhead; the disabled (nil-sink) case is the one
// BenchmarkSweepReplay itself guards.
func BenchmarkSweepReplayObserved(b *testing.B) { benchSweepReplay(b, obs.New(), telemetry.Config{}) }

// BenchmarkSweepReplayTelemetry is BenchmarkSweepReplayObserved with full
// simulation-domain telemetry on every arm: interval time-series at the
// default cadence, predictor-table introspection at boundaries, and top-K
// per-branch tracking. The delta against BenchmarkSweepReplayObserved is the
// enabled-telemetry cost; against BenchmarkSweepReplay, the whole
// observability stack's. Recorded in BENCH_telemetry.json.
func BenchmarkSweepReplayTelemetry(b *testing.B) {
	benchSweepReplay(b, obs.New(), telemetry.Config{Interval: 100_000, TableStats: true, TopK: 16})
}

// ---- end-to-end simulation throughput ----

func BenchmarkSimulation(b *testing.B) {
	p, err := branchsim.NewPredictor("2bcgskew:8KB")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	var last branchsim.Metrics
	for i := 0; i < b.N; i++ {
		last, err = branchsim.Simulate(ctx,
			branchsim.Workload("compress"),
			branchsim.Input(branchsim.InputTest),
			branchsim.WithPredictor(p),
			branchsim.WithCollisions(),
		)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(last.Branches)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}
