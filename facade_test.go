// Equivalence tests for the options-first facade: Simulate must reproduce
// the deprecated Run/RunContext/Profile wrappers bit for bit, and an
// attached observer must journal what actually ran.
package branchsim_test

//lint:file-ignore SA1019 this file deliberately exercises the deprecated API to prove Simulate equivalent

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"branchsim"
)

// TestSimulateMatchesDeprecatedRun runs the paper's five schemes through the
// deprecated Run wrapper and through Simulate and demands identical Metrics,
// counter for counter.
func TestSimulateMatchesDeprecatedRun(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"bimodal", "ghist", "gshare", "bimode", "2bcgskew"} {
		spec := name + ":2KB"
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			// Predictors are stateful: each path gets a fresh instance.
			p, err := branchsim.NewPredictor(spec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := branchsim.Run(branchsim.RunConfig{
				Workload: "compress", Input: branchsim.InputTest,
				Predictor: p, TrackCollisions: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := branchsim.Simulate(ctx,
				branchsim.Workload("compress"),
				branchsim.Input(branchsim.InputTest),
				branchsim.WithPredictorSpec(spec),
				branchsim.WithCollisions(),
			)
			if err != nil {
				t.Fatal(err)
			}
			if d := want.Diff(got); d != "" {
				t.Fatalf("Simulate diverges from Run: %s", d)
			}
		})
	}
}

// TestSimulateMatchesDeprecatedProfile checks both Profile modes — bias-only
// and predictor-accuracy — against the Simulate + WithProfileInto spelling.
func TestSimulateMatchesDeprecatedProfile(t *testing.T) {
	ctx := context.Background()
	for _, spec := range []string{"", "gshare:2KB"} {
		name := spec
		if name == "" {
			name = "bias-only"
		}
		t.Run(name, func(t *testing.T) {
			wantDB, wantM, err := branchsim.Profile("compress", branchsim.InputTest, spec)
			if err != nil {
				t.Fatal(err)
			}
			db := branchsim.NewProfileDB("compress", branchsim.InputTest)
			opts := []branchsim.SimOption{
				branchsim.Workload("compress"),
				branchsim.Input(branchsim.InputTest),
				branchsim.WithProfileInto(db),
			}
			if spec != "" {
				opts = append(opts, branchsim.WithPredictorSpec(spec), branchsim.WithCollisions())
			}
			gotM, err := branchsim.Simulate(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if d := wantM.Diff(gotM); d != "" {
				t.Fatalf("Simulate metrics diverge from Profile: %s", d)
			}
			if db.Len() != wantDB.Len() || db.DynamicBranches() != wantDB.DynamicBranches() ||
				db.Instructions != wantDB.Instructions || db.Predictor != wantDB.Predictor {
				t.Fatalf("profile DBs diverge: got len=%d dyn=%d instr=%d pred=%q, want len=%d dyn=%d instr=%d pred=%q",
					db.Len(), db.DynamicBranches(), db.Instructions, db.Predictor,
					wantDB.Len(), wantDB.DynamicBranches(), wantDB.Instructions, wantDB.Predictor)
			}
			// Per-branch agreement: identical profiles diverge nowhere.
			if d := branchsim.Diverge(wantDB, db); d.CoverageStatic != 1 || d.FlipStatic != 0 {
				t.Fatalf("per-branch divergence between Profile and Simulate: %+v", d)
			}
		})
	}
}

// TestSimulateJournalsArmRecord attaches an observer with a journal to one
// Simulate call and checks the record's schema end to end, including the
// canonicalized predictor label and the embedded Metrics round-trip.
func TestSimulateJournalsArmRecord(t *testing.T) {
	var buf bytes.Buffer
	sink := branchsim.NewObserver(branchsim.WithJournal(branchsim.NewJournal(&buf)))
	m, err := branchsim.Simulate(context.Background(),
		branchsim.Workload("compress"),
		branchsim.Input(branchsim.InputTest),
		branchsim.WithPredictorSpec("gshare"), // canonicalizes to gshare:8KB
		branchsim.WithObserver(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := branchsim.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Kind != "simulate" || rec.Workload != "compress" || rec.Input != branchsim.InputTest {
		t.Fatalf("record identity = kind %q, %s/%s", rec.Kind, rec.Workload, rec.Input)
	}
	if rec.Predictor != "gshare:8KB" {
		t.Fatalf("record predictor = %q, want canonical %q", rec.Predictor, "gshare:8KB")
	}
	if rec.Source != "computed" {
		t.Fatalf("record source = %q", rec.Source)
	}
	if rec.Events != m.Branches || rec.Events == 0 {
		t.Fatalf("record events = %d, metrics branches = %d", rec.Events, m.Branches)
	}
	if rec.WallNanos <= 0 || rec.EventsPerSec <= 0 {
		t.Fatalf("record timing degenerate: wall=%d ev/s=%g", rec.WallNanos, rec.EventsPerSec)
	}
	if len(rec.Phases) == 0 || rec.Phases[len(rec.Phases)-1].Phase != "simulate" {
		t.Fatalf("record phases = %+v, want a trailing simulate phase", rec.Phases)
	}
	if rec.Error != "" {
		t.Fatalf("record error = %q", rec.Error)
	}
	var got branchsim.Metrics
	if err := json.Unmarshal(rec.Metrics, &got); err != nil {
		t.Fatalf("record metrics do not decode: %v", err)
	}
	if d := m.Diff(got); d != "" {
		t.Fatalf("journaled metrics diverge from returned metrics: %s", d)
	}
}

// TestSimulateJournalsFailure checks that a failed arm still lands in the
// journal, with its error recorded.
func TestSimulateJournalsFailure(t *testing.T) {
	var buf bytes.Buffer
	sink := branchsim.NewObserver(branchsim.WithJournal(branchsim.NewJournal(&buf)))
	_, err := branchsim.Simulate(context.Background(),
		branchsim.Workload("nosuch"),
		branchsim.Input(branchsim.InputTest),
		branchsim.WithPredictorSpec("gshare:2KB"),
		branchsim.WithObserver(sink),
	)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if cerr := sink.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	recs, rerr := branchsim.ReadJournal(&buf)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(recs) != 1 || recs[0].Error == "" {
		t.Fatalf("failed arm not journaled with its error: %+v", recs)
	}
}

func TestSimulateErrors(t *testing.T) {
	ctx := context.Background()
	_, err := branchsim.Simulate(ctx,
		branchsim.Workload("compress"), branchsim.Input(branchsim.InputTest))
	if err == nil || !strings.Contains(err.Error(), "no predictor configured") {
		t.Fatalf("predictor-less Simulate: %v", err)
	}
	_, err = branchsim.Simulate(ctx,
		branchsim.Workload("compress"), branchsim.Input(branchsim.InputTest),
		branchsim.WithPredictorSpec("nosuch:8KB"))
	if err == nil || !strings.Contains(err.Error(), `"nosuch"`) {
		t.Fatalf("bad spec error should name the scheme: %v", err)
	}
	_, err = branchsim.Simulate(ctx,
		branchsim.Workload("compress"), branchsim.Input("nosuch"),
		branchsim.WithPredictorSpec("gshare:2KB"))
	if err == nil {
		t.Fatal("unknown input accepted")
	}
}
