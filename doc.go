// Package branchsim is a trace-driven branch-prediction laboratory
// reproducing Patil & Emer, "Combining Static and Dynamic Branch Prediction
// to Reduce Destructive Aliasing" (HPCA 2000).
//
// The library has four layers, each usable on its own:
//
//   - Dynamic predictors (internal/predictor, constructed here via
//     [NewPredictor]): bimodal, ghist, gshare, bi-mode, 2bcgskew and several
//     related designs, all behind one Predict/Update interface with optional
//     collision instrumentation.
//
//   - Workloads (internal/workload, run via [Run] or [Profile]): six
//     instrumented benchmark programs standing in for the paper's SPECINT95
//     suite, with deterministic train/ref inputs.
//
//   - The paper's contribution (internal/core): profile-guided selection of
//     statically predicted branches ([Static95], [StaticAcc], …) and the
//     [Combine] wrapper that applies the resulting hints around any dynamic
//     predictor, optionally shifting static outcomes into its global
//     history.
//
//   - Experiments (internal/experiment, cmd/bpexperiment): one registered
//     experiment per table and figure of the paper, plus ablations.
//
// # Quick start
//
//	p, _ := branchsim.NewPredictor("gshare:16KB")
//	m, _ := branchsim.Run(branchsim.RunConfig{
//		Workload: "gcc", Input: "ref", Predictor: p,
//	})
//	fmt.Printf("%.2f mispredicts/KI\n", m.MISPKI())
//
// To reproduce the paper's combined scheme:
//
//	db, _, _ := branchsim.Profile("gcc", "train", "gshare:16KB")
//	hints, _ := branchsim.SelectHints(branchsim.StaticAcc{}, db)
//	p, _ = branchsim.NewPredictor("gshare:16KB")
//	m, _ = branchsim.Run(branchsim.RunConfig{
//		Workload: "gcc", Input: "ref",
//		Predictor: branchsim.Combine(p, hints, branchsim.NoShift),
//	})
package branchsim
