// Package branchsim is a trace-driven branch-prediction laboratory
// reproducing Patil & Emer, "Combining Static and Dynamic Branch Prediction
// to Reduce Destructive Aliasing" (HPCA 2000).
//
// The library has four layers, each usable on its own:
//
//   - Dynamic predictors (internal/predictor, constructed here via
//     [NewPredictor]): bimodal, ghist, gshare, bi-mode, 2bcgskew and several
//     related designs, all behind one Predict/Update interface with optional
//     collision instrumentation.
//
//   - Workloads (internal/workload, run via [Simulate]): six instrumented
//     benchmark programs standing in for the paper's SPECINT95 suite, with
//     deterministic train/ref inputs.
//
//   - The paper's contribution (internal/core): profile-guided selection of
//     statically predicted branches ([Static95], [StaticAcc], …) and the
//     [Combine] wrapper that applies the resulting hints around any dynamic
//     predictor, optionally shifting static outcomes into its global
//     history.
//
//   - Experiments (internal/experiment, cmd/bpexperiment): one registered
//     experiment per table and figure of the paper, plus ablations.
//
// # Quick start
//
//	m, _ := branchsim.Simulate(ctx,
//		branchsim.Workload("gcc"),
//		branchsim.Input(branchsim.InputRef),
//		branchsim.WithPredictorSpec("gshare:16KB"),
//	)
//	fmt.Printf("%.2f mispredicts/KI\n", m.MISPKI())
//
// To reproduce the paper's combined scheme:
//
//	db := branchsim.NewProfileDB("gcc", "train")
//	branchsim.Simulate(ctx,
//		branchsim.Workload("gcc"), branchsim.Input("train"),
//		branchsim.WithPredictorSpec("gshare:16KB"),
//		branchsim.WithCollisions(), branchsim.WithProfileInto(db))
//	hints, _ := branchsim.SelectHints(branchsim.StaticAcc{}, db)
//	p, _ := branchsim.NewPredictor("gshare:16KB")
//	m, _ = branchsim.Simulate(ctx,
//		branchsim.Workload("gcc"), branchsim.Input(branchsim.InputRef),
//		branchsim.WithPredictor(branchsim.Combine(p, hints, branchsim.NoShift)),
//	)
//
// Runs are observable: attach a sink built with [NewObserver] via
// [WithObserver] to stream live counters (optionally over HTTP with
// Observer.Serve) and journal one [ArmRecord] per completed run. The
// deprecated [Run], [RunContext], [Profile] and [ProfileContext] wrappers
// remain and produce results identical to the equivalent [Simulate] call.
package branchsim
