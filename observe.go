package branchsim

import (
	"io"

	"branchsim/internal/obs"
	"branchsim/internal/telemetry"
)

// Observability re-exports. The observability layer lives in internal/obs
// and is threaded through the simulator, the replay engine and the
// experiment harness; these aliases expose the pieces external callers
// need: building a sink (NewObserver), journaling runs (Journal), and
// reading journals back (ReadJournal).
type (
	// Observer is an in-process observability sink: an atomic metrics
	// registry, per-arm lifecycle journaling, and optional HTTP exposure
	// (Serve) of expvar-style metrics plus pprof. A nil *Observer is a
	// valid no-op sink: every operation on it does nothing, at zero cost.
	Observer = obs.Observer
	// ObserverOption configures NewObserver.
	ObserverOption = obs.Option
	// ArmRecord is one journaled unit of work: a simulation arm with its
	// phase timings, provenance and final metrics.
	ArmRecord = obs.ArmRecord
	// Journal is an append-only JSONL sink for ArmRecords.
	Journal = obs.Journal

	// TelemetryConfig selects what simulation-domain telemetry a run
	// gathers: interval time-series (Interval, in instructions), predictor
	// table introspection (TableStats), and per-branch top-K offender
	// tracking (TopK / SiteCap). The zero value disables everything.
	TelemetryConfig = telemetry.Config

	// IntervalRecord is one interval of a run's simulation-domain time
	// series (journal record type "interval").
	IntervalRecord = obs.IntervalRecord
	// TableStatsRecord is one predictor-table introspection sample (journal
	// record type "table_stats").
	TableStatsRecord = obs.TableStatsRecord
	// TopKRecord is one run's per-branch summary: bias/misprediction
	// histograms plus worst-offender lists (journal record type "topk").
	TopKRecord = obs.TopKRecord
	// JournalRecords is a parsed journal, split by record type.
	JournalRecords = obs.Records
)

// NewObserver builds an observability sink. Attach it to runs with
// WithObserver (see Simulate), or serve it over HTTP with its Serve method.
func NewObserver(opts ...ObserverOption) *Observer { return obs.New(opts...) }

// WithJournal routes every completed arm's record to j.
func WithJournal(j *Journal) ObserverOption { return obs.WithJournal(j) }

// WithErrorLog reports journal write failures to w (default: stderr, once).
func WithErrorLog(w io.Writer) ObserverOption { return obs.WithErrorLog(w) }

// NewJournal wraps w in a journal. The caller keeps ownership of w;
// Journal.Close flushes but does not close it.
func NewJournal(w io.Writer) *Journal { return obs.NewJournal(w) }

// OpenJournal creates (truncating) the journal file at path.
func OpenJournal(path string) (*Journal, error) { return obs.OpenJournal(path) }

// ReadJournal parses a JSONL journal stream into its arm records, skipping
// telemetry record types; use ReadJournalRecords for everything.
func ReadJournal(r io.Reader) ([]ArmRecord, error) { return obs.ReadJournal(r) }

// ReadJournalFile reads the journal file at path (arm records only).
func ReadJournalFile(path string) ([]ArmRecord, error) { return obs.ReadJournalFile(path) }

// ReadJournalRecords parses a JSONL journal stream into all of its record
// types — arms, intervals, table samples and top-K summaries. Unknown record
// types or schema versions fail with an *obs.SchemaError naming the line.
func ReadJournalRecords(r io.Reader) (*JournalRecords, error) { return obs.ReadRecords(r) }

// ReadJournalRecordsFile reads all record types from the journal at path.
func ReadJournalRecordsFile(path string) (*JournalRecords, error) { return obs.ReadRecordsFile(path) }
