// Cross-training study: what happens when the profile comes from a
// different input than the run — the paper's §5.1 and Figure 13.
//
// It profiles a workload on its train input, measures on ref, and compares
// four arms: no static prediction, self-trained hints (profile == run
// input), naive cross-trained hints, and cross-trained hints with the
// Spike-style 5% bias-drift filter.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"branchsim"
)

func main() {
	workload := "perl" // the paper's worst cross-training victim
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	const spec = "gshare:16KB"
	ctx := context.Background()

	biasProfile := func(input string) *branchsim.ProfileDB {
		db := branchsim.NewProfileDB(workload, input)
		if _, err := branchsim.Simulate(ctx,
			branchsim.Workload(workload),
			branchsim.Input(input),
			branchsim.WithProfileInto(db),
		); err != nil {
			log.Fatal(err)
		}
		return db
	}
	trainDB := biasProfile(branchsim.InputTrain)
	refDB := biasProfile(branchsim.InputRef)

	// Table 5's question: how much does branch behaviour drift?
	d := branchsim.Diverge(trainDB, refDB)
	fmt.Printf("%s: train covers %.1f%% of ref's dynamic branches; %.1f%% flip direction; %.1f%% drift >50%%\n\n",
		workload, 100*d.CoverageDynamic, 100*d.FlipDynamic, 100*d.LargeDriftDynamic)

	selfHints, err := branchsim.SelectHints(branchsim.Static95{}, refDB)
	if err != nil {
		log.Fatal(err)
	}
	naiveHints, err := branchsim.SelectHints(branchsim.Static95{}, trainDB)
	if err != nil {
		log.Fatal(err)
	}
	// Spike-style profile maintenance: drop branches whose bias drifts
	// more than 5 points between the runs, then select.
	filtered := trainDB.Clone()
	removed := filtered.RemoveUnstable(refDB, 0.05)
	mergedHints, err := branchsim.SelectHints(branchsim.Static95{}, filtered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hints: self=%d, naive-cross=%d, filtered-cross=%d (filter removed %d unstable branches)\n\n",
		selfHints.Len(), naiveHints.Len(), mergedHints.Len(), removed)

	arms := []struct {
		name  string
		hints *branchsim.HintDB
	}{
		{"no static prediction", nil},
		{"self-trained (ref profile)", selfHints},
		{"cross-trained, naive", naiveHints},
		{"cross-trained, 5% drift filter", mergedHints},
	}
	for _, arm := range arms {
		dyn, err := branchsim.NewPredictor(spec)
		if err != nil {
			log.Fatal(err)
		}
		m, err := branchsim.Simulate(ctx,
			branchsim.Workload(workload),
			branchsim.Input(branchsim.InputRef),
			branchsim.WithPredictor(branchsim.Combine(dyn, arm.hints, branchsim.NoShift)),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %8.3f MISP/KI\n", arm.name, m.MISPKI())
	}
	fmt.Println("\nexpected shape: naive cross-training can be worse than no static prediction; the filter recovers most of the self-trained gain")
}
