// Production flow: the paper's §5.1 vision end to end — accumulate profiles
// across several runs in a Spike-style store, filter branches whose
// behaviour is unstable across inputs, generate hints, and price the result
// in pipeline cycles.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"branchsim"
	"branchsim/internal/cpi"
	"branchsim/internal/spike"
)

func main() {
	workload := "m88ksim" // the paper's worst naive-cross-training victim
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	const spec = "gshare:16KB"
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "spike-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := spike.Open(dir)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Instrumented runs accumulate profiles in the store, as a fleet of
	// production runs with varied inputs would (the paper's Spike model:
	// "as a program runs with different inputs ... Spike collects execution
	// profiles and updates the profile database").
	for _, input := range []string{branchsim.InputTest, branchsim.InputTrain, branchsim.InputRef} {
		db := branchsim.NewProfileDB(workload, input)
		m, err := branchsim.Simulate(ctx,
			branchsim.Workload(workload),
			branchsim.Input(input),
			branchsim.WithProfileInto(db),
		)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Update(db); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %s/%s: %d branches, %.1f CBRs/KI\n", workload, input, db.Len(), m.CBRsPerKI())
	}

	// 2. The optimizer generates hints from the merged store, dropping
	// branches whose bias drifts more than 5% across runs.
	hints, removed, err := store.SelectHints(workload, branchsim.Static95{}, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hints: %d selected, %d unstable branches filtered (%s)\n\n",
		hints.Len(), removed, hints.Profile)

	// 3. Deploy on the reference input. Compare against hints generated
	// naively from the train profile alone (no store, no filter).
	naiveDB := branchsim.NewProfileDB(workload, branchsim.InputTrain)
	if _, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload),
		branchsim.Input(branchsim.InputTrain),
		branchsim.WithProfileInto(naiveDB),
	); err != nil {
		log.Fatal(err)
	}
	naiveHints, err := branchsim.SelectHints(branchsim.Static95{}, naiveDB)
	if err != nil {
		log.Fatal(err)
	}
	baseDyn, _ := branchsim.NewPredictor(spec)
	base, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload), branchsim.Input(branchsim.InputRef),
		branchsim.WithPredictor(baseDyn),
	)
	if err != nil {
		log.Fatal(err)
	}
	dyn, _ := branchsim.NewPredictor(spec)
	comb, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload), branchsim.Input(branchsim.InputRef),
		branchsim.WithPredictor(branchsim.Combine(dyn, hints, branchsim.NoShift)),
	)
	if err != nil {
		log.Fatal(err)
	}
	naiveDyn, _ := branchsim.NewPredictor(spec)
	naive, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload), branchsim.Input(branchsim.InputRef),
		branchsim.WithPredictor(branchsim.Combine(naiveDyn, naiveHints, branchsim.NoShift)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8.3f MISP/KI\n", "dynamic only", base.MISPKI())
	fmt.Printf("%-28s %8.3f MISP/KI\n", "naive single-run hints", naive.MISPKI())
	fmt.Printf("%-28s %8.3f MISP/KI\n\n", "spike store, drift-filtered", comb.MISPKI())

	// 4. Price it: what the misprediction reduction buys per pipeline.
	for _, pl := range cpi.Pipelines() {
		fmt.Printf("%-38s CPI %.3f -> %.3f (%+.1f%% speedup)\n",
			pl.String(), pl.CPI(base), pl.CPI(comb), 100*pl.Speedup(base, comb))
	}
}
