// Quickstart: simulate a dynamic predictor on a workload, then add the
// paper's profile-guided static prediction and compare.
package main

import (
	"context"
	"fmt"
	"log"

	"branchsim"
)

func main() {
	const (
		workload = "gcc"
		input    = branchsim.InputTrain // "train" keeps the example fast
		spec     = "gshare:8KB"
	)
	ctx := context.Background()

	// 1. Baseline: the dynamic predictor alone.
	base, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload),
		branchsim.Input(input),
		branchsim.WithPredictorSpec(spec),
		branchsim.WithCollisions(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baseline: ", base.String())

	// 2. Phase 1 (the paper's selection phase): profile the same predictor
	// to learn each branch's bias and per-branch accuracy.
	db := branchsim.NewProfileDB(workload, input)
	if _, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload),
		branchsim.Input(input),
		branchsim.WithPredictorSpec(spec),
		branchsim.WithCollisions(),
		branchsim.WithProfileInto(db),
	); err != nil {
		log.Fatal(err)
	}

	// 3. Select "hard" branches: bias beats the dynamic predictor's own
	// accuracy on that branch (Static_Acc).
	hints, err := branchsim.SelectHints(branchsim.StaticAcc{}, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static_acc selected %d of %d branches\n", hints.Len(), db.Len())

	// 4. Phase 2: rerun with the combined static+dynamic predictor.
	dyn2, err := branchsim.NewPredictor(spec)
	if err != nil {
		log.Fatal(err)
	}
	combined, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload),
		branchsim.Input(input),
		branchsim.WithPredictor(branchsim.Combine(dyn2, hints, branchsim.NoShift)),
		branchsim.WithCollisions(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("combined: ", combined.String())

	fmt.Printf("MISP/KI improvement: %.1f%%\n", 100*(1-combined.MISPKI()/base.MISPKI()))
	fmt.Printf("destructive collisions: %d -> %d\n",
		base.Collisions.Destructive, combined.Collisions.Destructive)
}
