// Aliasing study: how destructive aliasing scales with predictor size, and
// how much of it profile-guided static filtering removes — the phenomenon
// behind the paper's Figures 1-6.
//
// For a sweep of gshare sizes on one workload it prints MISP/KI, total
// collisions, and the constructive/destructive split, with and without
// Static_95 hints.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"branchsim"
)

func main() {
	workload := "gcc"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	const input = branchsim.InputTrain
	ctx := context.Background()

	// Bias-only profile: Static_95 does not depend on the dynamic
	// predictor, so one profile serves the whole sweep.
	db := branchsim.NewProfileDB(workload, input)
	if _, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload),
		branchsim.Input(input),
		branchsim.WithProfileInto(db),
	); err != nil {
		log.Fatal(err)
	}
	hints, err := branchsim.SelectHints(branchsim.Static95{}, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d static branches, %d hinted (bias > 95%%)\n\n",
		workload, db.Len(), hints.Len())

	fmt.Printf("%-6s  %-28s  %-28s\n", "", "plain gshare", "gshare + static_95")
	fmt.Printf("%-6s  %10s %8s %8s  %10s %8s %8s\n",
		"size", "MISP/KI", "coll(K)", "destr(K)", "MISP/KI", "coll(K)", "destr(K)")
	for _, kb := range []int{1, 2, 4, 8, 16, 32, 64} {
		spec := fmt.Sprintf("gshare:%dKB", kb)
		row := make([]branchsim.Metrics, 2)
		for i, h := range []*branchsim.HintDB{nil, hints} {
			dyn, err := branchsim.NewPredictor(spec)
			if err != nil {
				log.Fatal(err)
			}
			row[i], err = branchsim.Simulate(ctx,
				branchsim.Workload(workload),
				branchsim.Input(input),
				branchsim.WithPredictor(branchsim.Combine(dyn, h, branchsim.NoShift)),
				branchsim.WithCollisions(),
			)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-6s  %10.3f %8.0f %8.0f  %10.3f %8.0f %8.0f\n",
			fmt.Sprintf("%dKB", kb),
			row[0].MISPKI(), float64(row[0].Collisions.Total)/1e3, float64(row[0].Collisions.Destructive)/1e3,
			row[1].MISPKI(), float64(row[1].Collisions.Total)/1e3, float64(row[1].Collisions.Destructive)/1e3)
	}
	fmt.Println("\nexpected shape: collisions and the static-prediction gain both shrink as the table grows")
}
