// Custom predictor: the public API accepts any implementation of
// branchsim.Predictor, so new designs can be dropped into the same
// workloads, hint machinery and metrics as the built-ins.
//
// This example implements gselect (concatenating address and history bits
// rather than xoring them, per McFarling 1993), wires it through
// branchsim.Simulate, and combines it with Static_95 hints.
package main

import (
	"context"
	"fmt"
	"log"

	"branchsim"
)

// GSelect indexes a 2-bit counter table with the concatenation of low
// branch-address bits and global-history bits.
type GSelect struct {
	ctr      []uint8
	histBits int
	addrBits int
	hist     uint64
	lastIdx  uint64
}

// NewGSelect builds a gselect with 2^(addrBits+histBits) counters.
func NewGSelect(addrBits, histBits int) *GSelect {
	return &GSelect{
		ctr:      make([]uint8, 1<<(addrBits+histBits)),
		histBits: histBits,
		addrBits: addrBits,
	}
}

// Name implements branchsim.Predictor.
func (g *GSelect) Name() string { return fmt.Sprintf("gselect(a=%d,h=%d)", g.addrBits, g.histBits) }

// SizeBits implements branchsim.Predictor.
func (g *GSelect) SizeBits() int { return 2*len(g.ctr) + g.histBits }

// Predict implements branchsim.Predictor.
func (g *GSelect) Predict(pc uint64) bool {
	addr := (pc >> 2) & ((1 << g.addrBits) - 1)
	h := g.hist & ((1 << g.histBits) - 1)
	g.lastIdx = addr<<g.histBits | h
	return g.ctr[g.lastIdx] >= 2
}

// Update implements branchsim.Predictor.
func (g *GSelect) Update(_ uint64, taken bool) {
	c := g.ctr[g.lastIdx]
	if taken {
		if c < 3 {
			g.ctr[g.lastIdx] = c + 1
		}
	} else if c > 0 {
		g.ctr[g.lastIdx] = c - 1
	}
	g.ShiftHistory(taken)
}

// ShiftHistory implements branchsim.HistoryShifter, so the combined
// predictor's shift policies work with it too.
func (g *GSelect) ShiftHistory(taken bool) {
	g.hist <<= 1
	if taken {
		g.hist |= 1
	}
}

// Reset implements branchsim.Predictor.
func (g *GSelect) Reset() {
	for i := range g.ctr {
		g.ctr[i] = 1
	}
	g.hist = 0
}

func main() {
	const workload = "compress"
	const input = branchsim.InputTrain
	ctx := context.Background()

	mine := NewGSelect(9, 6) // 2^15 counters = 8KB
	mine.Reset()
	m1, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload), branchsim.Input(input),
		branchsim.WithPredictor(mine),
	)
	if err != nil {
		log.Fatal(err)
	}

	ref, err := branchsim.NewPredictor("gshare:8KB")
	if err != nil {
		log.Fatal(err)
	}
	m2, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload), branchsim.Input(input),
		branchsim.WithPredictor(ref),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8.3f MISP/KI (%d bits)\n", mine.Name(), m1.MISPKI(), mine.SizeBits())
	fmt.Printf("%-18s %8.3f MISP/KI (%d bits)\n", "gshare:8KB", m2.MISPKI(), ref.SizeBits())

	// The custom predictor composes with the paper's machinery unchanged.
	db := branchsim.NewProfileDB(workload, input)
	if _, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload), branchsim.Input(input),
		branchsim.WithProfileInto(db),
	); err != nil {
		log.Fatal(err)
	}
	hints, err := branchsim.SelectHints(branchsim.Static95{}, db)
	if err != nil {
		log.Fatal(err)
	}
	mine2 := NewGSelect(9, 6)
	mine2.Reset()
	m3, err := branchsim.Simulate(ctx,
		branchsim.Workload(workload), branchsim.Input(input),
		branchsim.WithPredictor(branchsim.Combine(mine2, hints, branchsim.ShiftOutcome)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8.3f MISP/KI (+static_95, shift)\n", mine.Name(), m3.MISPKI())
}
